#!/usr/bin/env python
"""Online prediction quality benchmark + CI gate.

Replays three calibrated failure scenarios through the full pipeline
with the streaming prediction stage enabled and scores the emitted
warnings against ground truth — the target category's raw alert times
in the *last third* of the stream, so every scored warning comes from
an ensemble that had two thirds of the stream to mine correlations and
refit on.  Results (precision / recall / F1 / lead-time distribution /
records-per-second) land in ``benchmarks/output/BENCH_prediction.json``
next to the committed quality floors.

The three scenarios cover the three signature families the online
ensemble learns:

* ``thunderbird`` VAPI storms — burst-rate members must catch
  storm onsets seconds-to-minutes ahead (dense, short-lead regime).
* ``liberty`` PBS_CHK — hour-scale checkpoint failures with day-scale
  actionable lead; the scenario widens the lead window to match
  (``lead_min=600s``, ``lead_max=86400s``) and the dispersion-frame
  members carry it.
* ``redstorm`` BUS_PAR — DDN disk-storm precursors at default lead.

``--gate`` re-runs the scenarios and fails (exit 1) if any measured
precision/recall drops below the floors in the *committed*
``BENCH_prediction.json`` — the CI job that keeps prediction quality
ratcheted.  Without ``--gate`` the script refreshes the JSON (adding
the floors below, preserving any ``throughput`` section stamped by
``bench_report.py --engine``).

Usage::

    PYTHONPATH=src python scripts/prediction_eval.py [--gate]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import api  # noqa: E402
from repro.prediction.base import evaluate  # noqa: E402
from repro.simulation.generator import LogGenerator  # noqa: E402
from repro.streaming import PredictionConfig  # noqa: E402

OUTPUT = REPO / "benchmarks" / "output" / "BENCH_prediction.json"

#: Committed quality floors, chosen with margin under the calibrated
#: measurements (see the JSON for the measured values).  ``--gate``
#: reads the floors from the committed JSON, so tightening them means
#: re-running this script and committing the result.
SCENARIOS = (
    {
        "name": "thunderbird-vapi-storm",
        "system": "thunderbird",
        "scale": 1e-3,
        "seed": 11,
        "target": "VAPI",
        "config": {},
        "floors": {"precision": 0.50, "recall": 0.65},
    },
    {
        "name": "liberty-pbs-chk",
        "system": "liberty",
        "scale": 1e-3,
        "seed": 11,
        "target": "PBS_CHK",
        # PBS_CHK recurs on an ~2h cadence; day-scale leads are the
        # actionable window, so the scenario widens the config to match.
        "config": {"lead_min": 600.0, "lead_max": 86400.0},
        "floors": {"precision": 0.80, "recall": 0.50},
    },
    {
        "name": "redstorm-ddn-disk",
        "system": "redstorm",
        "scale": 2e-4,
        "seed": 11,
        "target": "BUS_PAR",
        "config": {},
        "floors": {"precision": 0.80, "recall": 0.70},
    },
)


def lead_times(warn_times, fail_times, lead_min, lead_max):
    """Per-predicted-failure lead: failure time minus the *latest*
    qualifying warning (the most recent one an operator could act on)."""
    from bisect import bisect_left, bisect_right

    warn_times = sorted(warn_times)
    leads = []
    for ft in fail_times:
        lo = bisect_left(warn_times, ft - lead_max)
        hi = bisect_right(warn_times, ft - lead_min)
        if hi > lo:
            leads.append(ft - warn_times[hi - 1])
    return leads


def run_scenario(spec):
    config = PredictionConfig(**spec["config"])
    generated = LogGenerator(
        spec["system"], scale=spec["scale"], seed=spec["seed"]
    ).generate()
    # Materialize the stream first so the timed region is the pipeline,
    # not the generator.
    records = list(generated.records)
    t0 = time.perf_counter()
    result = api.run_stream(
        records, spec["system"], generated=generated, predict=config
    )
    seconds = time.perf_counter() - t0

    target = spec["target"]
    target_times = sorted(
        a.timestamp for a in result.raw_alerts if a.category == target
    )
    if not target_times:
        raise SystemExit(f"{spec['name']}: no {target} alerts generated")
    # Score only the last third: the ensemble needs the head of the
    # stream to mine correlations and pass its first refits.
    span = target_times[-1] - target_times[0]
    cut = target_times[-1] - span / 3.0
    failures = [t for t in target_times if t >= cut]
    warnings = [
        w for w in result.prediction.warnings
        if w.category == target and w.t >= cut
    ]

    score = evaluate(
        warnings, failures, target,
        lead_min=config.lead_min, lead_max=config.lead_max,
    )
    leads = lead_times(
        [w.t for w in warnings], failures, config.lead_min, config.lead_max
    )
    return {
        "name": spec["name"],
        "system": spec["system"],
        "scale": spec["scale"],
        "seed": spec["seed"],
        "target": target,
        "config": spec["config"],
        "records": len(records),
        "seconds": round(seconds, 3),
        "records_per_sec": round(len(records) / seconds, 1),
        "failures": score.failures,
        "predicted_failures": score.predicted_failures,
        "warnings": score.warnings,
        "correct_warnings": score.correct_warnings,
        "precision": round(score.precision, 4),
        "recall": round(score.recall, 4),
        "f1": round(score.f1, 4),
        "lead_median_sec": (
            round(statistics.median(leads), 1) if leads else None
        ),
        "lead_min_sec": round(min(leads), 1) if leads else None,
        "lead_max_sec": round(max(leads), 1) if leads else None,
        "members": len(result.prediction.members),
        "refits": result.prediction.refits,
        "floors": spec["floors"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--gate", action="store_true",
                        help="fail if any scenario drops below the floors "
                             "in the committed BENCH_prediction.json")
    args = parser.parse_args(argv)

    committed_floors = {}
    if args.gate:
        if not OUTPUT.exists():
            print(f"FAIL: missing {OUTPUT.relative_to(REPO)} "
                  "(run scripts/prediction_eval.py and commit)")
            return 1
        committed = json.loads(OUTPUT.read_text())
        committed_floors = {
            row["name"]: row.get("floors", {})
            for row in committed.get("scenarios", [])
        }

    rows = []
    failures = []
    for spec in SCENARIOS:
        row = run_scenario(spec)
        rows.append(row)
        lead = (
            f"{row['lead_median_sec']:,.0f}s"
            if row["lead_median_sec"] is not None else "-"
        )
        print(
            f"{row['name']:<24} P={row['precision']:.2f} "
            f"R={row['recall']:.2f} F1={row['f1']:.2f} "
            f"lead~{lead:<9} {row['records_per_sec']:>9,.0f} rec/s"
        )
        floors = committed_floors.get(spec["name"], {}) if args.gate else {}
        for metric, floor in sorted(floors.items()):
            if row.get(metric, 0.0) < floor:
                failures.append(
                    f"{row['name']}: {metric} {row[metric]:.3f} below the "
                    f"committed floor {floor:.2f}"
                )

    if args.gate:
        missing = set(committed_floors) - {r["name"] for r in rows}
        if missing:
            failures.append(
                f"committed scenarios not evaluated: {sorted(missing)}"
            )
        if failures:
            print(f"\nFAIL: {len(failures)} prediction-quality violations")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nOK: all scenarios at or above the committed quality floors")
        return 0

    report = {"benchmark": "online_prediction_quality", "scenarios": rows}
    if OUTPUT.exists():
        previous = json.loads(OUTPUT.read_text())
        if "throughput" in previous:
            report["throughput"] = previous["throughput"]
    OUTPUT.parent.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(report, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {OUTPUT.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

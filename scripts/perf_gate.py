#!/usr/bin/env python
"""CI perf gate: replay the engine driver matrix against the committed
baseline and fail on a >20% records/s regression.

Re-runs the exact ``BENCH_engine.json`` workload — the 1M-record
synthetic Liberty stream through every engine driver — and compares each
driver's throughput to the committed baseline *after normalizing for
host speed*: CI runners differ from the machine that recorded the
baseline, so the serial driver's measured/baseline ratio is used as the
host factor, and every other driver must reach

    baseline_records_per_sec * host_factor * (1 - TOLERANCE)

That makes the gate sensitive to *relative* regressions (a driver
getting slower than the engine around it) while staying robust to
runner speed.  Two backstops still catch engine-wide rot: the serial
driver itself must reach an absolute floor (a generous fraction of
baseline — CI runners are not 3x slower than the recording host), and
every driver must stay output-equivalent to serial before its number
counts (a fast wrong pipeline is not a result).

Two ratchets keep the batch-first engine honest beyond simple
regression checks.  First, the *committed baseline itself* must record
serial throughput at least ``SERIAL_RATCHET``x the pre-batch-engine
seed (113,686.5 rec/s, measured on the same class of host that records
baselines — so the comparison is already host-normalized): nobody can
quietly re-baseline the compiled-ruleset fast path away.  Second, the
measured sharded/serial ratio must clear a floor keyed off the host's
cores: near-parity (the byte-buffer boundary is cheap) even on one
core, a real win once four or more cores are available.

Exit 1 on any violated floor or ratchet, any equivalence break, or a
baseline/matrix mismatch (a driver added to the engine but missing from
the committed baseline must be benchmarked, not silently skipped).

Usage::

    PYTHONPATH=src python scripts/perf_gate.py [--records N] [--tolerance F]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "scripts"))

import bench_report  # noqa: E402

BASELINE = REPO / "benchmarks" / "output" / "BENCH_engine.json"
PREDICTION_BASELINE = REPO / "benchmarks" / "output" / "BENCH_prediction.json"
STORE_BASELINE = REPO / "benchmarks" / "output" / "BENCH_store.json"

#: Allowed relative regression per driver after host normalization.
TOLERANCE = 0.20

#: Hard ceiling on the online prediction stage's throughput cost: the
#: serial-predict row must keep at least ``1 - PREDICT_OVERHEAD_MAX`` of
#: plain serial throughput (before tolerance).  The committed
#: ``BENCH_prediction.json`` overhead additionally ratchets the floor:
#: whichever of the two bounds is tighter wins, so the stage can only
#: get cheaper without a deliberate re-baseline.
PREDICT_OVERHEAD_MAX = 0.15

#: Hard ceiling on the columnar store's write-path cost: a serial run
#: with ``store_dir`` set must keep at least ``1 - STORE_OVERHEAD_MAX``
#: of plain serial throughput (before tolerance).  As with prediction,
#: the committed ``BENCH_store.json`` overhead ratchets the bound
#: tighter: whichever is stricter wins.
STORE_OVERHEAD_MAX = 0.15

#: The serial driver must reach this fraction of the baseline's absolute
#: records/s — loose enough for slower CI runners, tight enough that an
#: engine-wide collapse cannot hide inside the host factor.
SERIAL_ABSOLUTE_FLOOR = 0.35

#: Serial records/s of the last pre-batch-engine baseline (PR 6), and
#: the factor the committed baseline must stay above it.  Baselines are
#: recorded on the same class of host as the seed was, so the committed
#: numbers compare directly — no further normalization needed.
SEED_SERIAL_RPS = 113_686.5
SERIAL_RATCHET = 3.0

#: Measured sharded/serial ratio floors (before tolerance).  The
#: byte-buffer shard boundary must keep sharding near-free even where
#: it cannot win (single core), and actually win once enough cores
#: exist.  The gate's ``--tolerance`` applies to these too: on a
#: shared single-core runner the scheduler can interleave parent and
#: worker badly through no fault of the code.
SHARDED_MIN_RATIO = 0.8
SHARDED_MULTI_CORE_RATIO = 1.5
SHARDED_MULTI_CORE_AT = 4

#: Timing runs per driver; the best is scored.  Benchmark noise on a
#: busy runner is one-sided — the scheduler can only make a run look
#: slower than the code is — so best-of-N converges on the code's
#: actual speed instead of the runner's worst moment.
REPEATS = 2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=None,
                        help="stream length (default: the baseline's)")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count (default: the baseline's)")
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help="timing runs per driver; best is scored "
                             f"(default: {REPEATS})")
    parser.add_argument("--require-cores", type=int, default=None,
                        help="skip (exit 0) with a notice unless the host "
                             "has at least this many cores; used by the CI "
                             "multi-core job so the >1.2x sharded floor is "
                             "only armed where it can be met")
    args = parser.parse_args(argv)

    if args.require_cores is not None:
        cores = os.cpu_count() or 1
        if cores < args.require_cores:
            print(
                f"SKIPPED: perf gate requires >= {args.require_cores} cores "
                f"but this host has {cores}; the multi-core sharded floor "
                "(ROADMAP item 1a) stays unarmed on this runner"
            )
            return 0

    baseline = json.loads(BASELINE.read_text())
    records_n = args.records or baseline["records"]
    workers = args.workers or baseline["workers"]
    by_driver = {row["driver"]: row for row in baseline["drivers"]}
    if "serial" not in by_driver:
        print("FAIL: baseline has no serial row to normalize against")
        return 1

    ratchet_floor = SEED_SERIAL_RPS * SERIAL_RATCHET
    if by_driver["serial"]["records_per_sec"] < ratchet_floor:
        print(
            f"FAIL: committed serial baseline "
            f"{by_driver['serial']['records_per_sec']:,.0f} rec/s is below "
            f"the ratchet floor {ratchet_floor:,.0f} "
            f"({SERIAL_RATCHET:.0f}x the PR 6 seed {SEED_SERIAL_RPS:,.1f}); "
            "the compiled-ruleset fast path must not be re-baselined away"
        )
        return 1

    print(f"perf gate: {records_n:,} records, workers={workers}, "
          f"tolerance {args.tolerance:.0%} "
          f"(baseline: {BASELINE.relative_to(REPO)})")
    records = bench_report.synthetic_stream(records_n)
    configs = bench_report.engine_driver_configs(workers)

    # The gate must cover exactly the benchmarked matrix: a new driver
    # config without a committed baseline row is itself a failure.
    missing = sorted(set(configs) - set(by_driver))
    if missing:
        print(f"FAIL: drivers missing from committed baseline: {missing} "
              "(run scripts/bench_report.py --engine and commit)")
        return 1

    def best_run(**run_kwargs):
        """Best-of-``--repeats`` timing (noise only ever slows a run)."""
        best = None
        for _ in range(max(1, args.repeats)):
            attempt = bench_report.timed_run(records, **run_kwargs)
            if best is None or attempt[1] < best[1]:
                best = attempt
        return best

    serial_result, serial_seconds = best_run(**configs.pop("serial"))
    serial_sig = bench_report.signature(serial_result)
    measured = {"serial": len(records) / serial_seconds}
    host_factor = measured["serial"] / by_driver["serial"]["records_per_sec"]
    print(f"  serial: {measured['serial']:>10,.0f} rec/s "
          f"(host factor {host_factor:.2f}x baseline)")

    failures = []
    absolute_floor = (
        by_driver["serial"]["records_per_sec"] * SERIAL_ABSOLUTE_FLOOR
    )
    if measured["serial"] < absolute_floor:
        failures.append(
            f"serial throughput {measured['serial']:,.0f} rec/s below the "
            f"absolute floor {absolute_floor:,.0f} "
            f"({SERIAL_ABSOLUTE_FLOOR:.0%} of baseline)"
        )

    for driver, run_kwargs in sorted(configs.items()):
        result, seconds = best_run(**run_kwargs)
        rate = len(records) / seconds
        measured[driver] = rate
        if bench_report.signature(result) != serial_sig:
            failures.append(f"{driver}: output diverged from serial")
            continue
        floor = (
            by_driver[driver]["records_per_sec"]
            * host_factor * (1.0 - args.tolerance)
        )
        verdict = "ok" if rate >= floor else "REGRESSION"
        print(f"  {driver:<16} {rate:>10,.0f} rec/s "
              f"(floor {floor:>10,.0f})  {verdict}")
        if rate < floor:
            failures.append(
                f"{driver}: {rate:,.0f} rec/s < normalized floor "
                f"{floor:,.0f} (baseline "
                f"{by_driver[driver]['records_per_sec']:,.0f} "
                f"x host {host_factor:.2f} x {1 - args.tolerance:.2f})"
            )

    if "sharded" in measured:
        ratio = measured["sharded"] / measured["serial"]
        cores = os.cpu_count() or 1
        target = (
            SHARDED_MULTI_CORE_RATIO if cores >= SHARDED_MULTI_CORE_AT
            else SHARDED_MIN_RATIO
        )
        ratio_floor = target * (1.0 - args.tolerance)
        verdict = "ok" if ratio >= ratio_floor else "REGRESSION"
        print(f"  sharded/serial ratio {ratio:.2f}x "
              f"(floor {ratio_floor:.2f}x on {cores} cores)  {verdict}")
        if ratio < ratio_floor:
            failures.append(
                f"sharded/serial ratio {ratio:.2f}x below the "
                f"{ratio_floor:.2f}x floor for a {cores}-core host "
                f"(target {target:.2f}x less tolerance): the shard "
                "boundary has gotten expensive relative to serial"
            )

    if "serial-predict" in measured:
        ratio = measured["serial-predict"] / measured["serial"]
        target = 1.0 - PREDICT_OVERHEAD_MAX
        if PREDICTION_BASELINE.exists():
            committed = json.loads(PREDICTION_BASELINE.read_text())
            committed_overhead = (
                committed.get("throughput", {}).get("overhead_frac")
            )
            if committed_overhead is None:
                failures.append(
                    "BENCH_prediction.json has no throughput.overhead_frac "
                    "(run scripts/bench_report.py --engine and commit): the "
                    "prediction cost ratchet is disarmed"
                )
            else:
                # The committed overhead ratchets the ceiling downward.
                target = max(target, 1.0 - max(committed_overhead, 0.0))
        else:
            failures.append(
                f"missing {PREDICTION_BASELINE.relative_to(REPO)} "
                "(run scripts/prediction_eval.py then bench_report.py "
                "--engine and commit)"
            )
        ratio_floor = target * (1.0 - args.tolerance)
        verdict = "ok" if ratio >= ratio_floor else "REGRESSION"
        print(f"  predict/serial ratio {ratio:.2f}x "
              f"(floor {ratio_floor:.2f}x)  {verdict}")
        if ratio < ratio_floor:
            failures.append(
                f"serial-predict keeps only {ratio:.0%} of serial "
                f"throughput, below the {ratio_floor:.0%} floor (ceiling "
                f"{1 - target:.0%} overhead less tolerance): the online "
                "prediction stage has gotten too expensive"
            )

    # -- columnar store write-path cost --------------------------------
    # A serial run with ``store_dir`` must stay near plain serial (the
    # sink packs pages and appends; it must not dominate).  Measured
    # here rather than in the driver matrix so the committed engine
    # baseline's rows stay untouched.
    with tempfile.TemporaryDirectory(prefix="perf-gate-store-") as tmp:
        best = None
        for attempt in range(max(1, args.repeats)):
            run = bench_report.timed_run(
                records, store_dir=os.path.join(tmp, f"s{attempt}")
            )
            if best is None or run[1] < best[1]:
                best = run
        store_result, store_seconds = best
        if bench_report.signature(store_result) != serial_sig:
            failures.append("store-backed run: output diverged from serial")
    ratio = (len(records) / store_seconds) / measured["serial"]
    target = 1.0 - STORE_OVERHEAD_MAX
    if STORE_BASELINE.exists():
        committed_store = json.loads(STORE_BASELINE.read_text())
        committed_overhead = (
            committed_store.get("write", {}).get("overhead_frac")
        )
        if committed_overhead is None:
            failures.append(
                "BENCH_store.json has no write.overhead_frac (run "
                "scripts/bench_report.py --store and commit): the store "
                "cost ratchet is disarmed"
            )
        else:
            target = max(target, 1.0 - max(committed_overhead, 0.0))
    else:
        failures.append(
            f"missing {STORE_BASELINE.relative_to(REPO)} "
            "(run scripts/bench_report.py --store and commit)"
        )
    ratio_floor = target * (1.0 - args.tolerance)
    verdict = "ok" if ratio >= ratio_floor else "REGRESSION"
    print(f"  store/serial ratio {ratio:.2f}x "
          f"(floor {ratio_floor:.2f}x)  {verdict}")
    if ratio < ratio_floor:
        failures.append(
            f"serial-with-store keeps only {ratio:.0%} of serial "
            f"throughput, below the {ratio_floor:.0%} floor (ceiling "
            f"{1 - target:.0%} overhead less tolerance): the columnar "
            "sink has gotten too expensive"
        )

    if failures:
        print(f"\nFAIL: {len(failures)} perf-gate violations")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: all drivers within tolerance of the committed baseline, "
          "outputs equivalent to serial")
    return 0


if __name__ == "__main__":
    sys.exit(main())

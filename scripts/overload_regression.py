#!/usr/bin/env python
"""CI overload regression: bounded memory under a 10x burst, enforced.

Runs a scaled five-system study twice — unbounded (the accounting
baseline) and bounded under a 10x burst from an unpausable source — with
the process's address space hard-capped via ``resource.setrlimit``.  The
cap is generous (numpy and the interpreter need real room); the point is
that a *runaway queue* would blow through it and the job would die, while
the bounded pipeline must stay comfortably inside.

Failure conditions (any -> exit 1):

* a queue's peak occupancy exceeds its configured capacity;
* a tagged alert is silently dropped: a ``tagged-alert`` shed count, or a
  spill total that does not match the dead-letter queue's
  ``shed-overload`` accounting;
* record conservation breaks: admitted + shed + spilled != the unbounded
  run's message count;
* the overload metrics fail to appear in ``PipelineResult.summary()``.

Usage: PYTHONPATH=src python scripts/overload_regression.py [--scale S]
"""

from __future__ import annotations

import argparse
import sys

ADDRESS_SPACE_CAP = 4 * 1024**3  # 4 GiB: generous, but fatal to a leak


def cap_address_space() -> bool:
    try:
        import resource
    except ImportError:  # non-POSIX platform: run uncapped
        return False
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    cap = ADDRESS_SPACE_CAP if hard == resource.RLIM_INFINITY \
        else min(ADDRESS_SPACE_CAP, hard)
    resource.setrlimit(resource.RLIMIT_AS, (cap, hard))
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=2e-5)
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument("--max-buffer", type=int, default=512)
    args = parser.parse_args()

    if cap_address_space():
        print(f"address-space cap: {ADDRESS_SPACE_CAP / 1024**3:.1f} GiB")
    else:
        print("address-space cap: unavailable on this platform")

    from repro import api
    from repro.resilience.backpressure import BackpressureConfig
    from repro.resilience.deadletter import REASON_SHED_OVERLOAD
    from repro.resilience.shedding import CLASS_ALERT
    from repro.systems.specs import SYSTEMS

    failures = []
    for system in sorted(SYSTEMS):
        scale = args.scale * (100 if system == "bgl" else 1)
        baseline = api.run_system(system, scale=scale, seed=args.seed)
        config = BackpressureConfig.burst(
            factor=10.0, service_batch=32,
            max_buffer=args.max_buffer, filter_buffer=args.max_buffer // 4,
        )
        result = api.run_system(
            system, scale=scale, seed=args.seed, backpressure=config,
        )
        report = result.overload

        for name, peak in report.queue_peaks.items():
            bound = report.queue_capacities[name]
            if peak > bound:
                failures.append(
                    f"{system}: queue {name} peaked at {peak} > bound {bound}"
                )
        if report.shed_by_class.get(CLASS_ALERT):
            failures.append(
                f"{system}: {report.shed_by_class[CLASS_ALERT]} tagged "
                "alerts silently shed"
            )
        spilled_in_dlq = result.dead_letters.by_reason.get(
            REASON_SHED_OVERLOAD, 0
        )
        if report.total_spilled != spilled_in_dlq:
            failures.append(
                f"{system}: {report.total_spilled} spills but only "
                f"{spilled_in_dlq} accounted in the dead-letter queue"
            )
        accounted = (
            result.message_count + report.total_shed + report.total_spilled
        )
        if accounted != baseline.message_count:
            failures.append(
                f"{system}: conservation broken — {accounted} accounted vs "
                f"{baseline.message_count} generated"
            )
        if "queues (peak)" not in result.summary():
            failures.append(f"{system}: overload metrics missing in summary()")

        peaks = ", ".join(
            f"{name} {peak}/{report.queue_capacities[name]}"
            for name, peak in sorted(report.queue_peaks.items())
        )
        print(
            f"{system:>12}: {result.message_count:,} admitted, "
            f"{report.total_shed:,} shed, {report.total_spilled:,} spilled "
            f"(of {baseline.message_count:,}); peaks: {peaks}"
        )

    if failures:
        print("\nOVERLOAD REGRESSION FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall overload invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

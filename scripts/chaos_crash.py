#!/usr/bin/env python
"""Crash-chaos harness: SIGKILL the pipeline at deterministic-random
points — including *inside* durability writes — and prove recovery is
byte-identical to an uninterrupted run.

Phases (all seeded from ``--seed``; every failure is collected, the
process exits 1 if any phase saw one):

1. **Baselines** — each driver (serial / sharded / bounded, one paper
   dialect each) runs uninterrupted twice: once in-memory and once with
   a ``--state-dir``, proving durability itself does not perturb the
   output, and learning the run's record and filesystem-op counts so
   kill points can be drawn inside them.
2. **Kill cycles** (``--cycles``, default 25) — each cycle runs a fresh
   state dir through one or two SIGKILLs and a final restart.  Even
   cycles kill after a random *record* (the stream dies between
   checkpoints); odd cycles arm ``REPRO_FAULT_FS_KILL_AT`` so the
   injected :class:`~repro.resilience.faults.FaultyFilesystem` tears a
   checkpoint write in half, fsyncs the torn prefix, and SIGKILLs the
   process mid-write.  The final run must complete and fingerprint
   byte-identical to the baseline.
3. **Online-prediction kill cycles** (``--predict-cycles``, default 6)
   — the kill-and-restart contract of phase 2, with the streaming
   correlation miner + online predictor ensemble riding the run
   (``predict=True``).  The fingerprint widens to cover the full
   warning stream, ensemble membership, refit count, and correlation
   graph, so a resumed run that drops, duplicates, or re-times a single
   warning — or resumes the miner ahead of the filter clocks — fails.
4. **ENOSPC / EIO** — ``REPRO_FAULT_FS_FAIL_AFTER`` makes the disk fail
   mid-run and stay failed.  The run must still complete with the
   baseline fingerprint (zero alert loss) while the durability status
   accounts for every unpersisted checkpoint exactly:
   ``taken == saved + unpersisted``.
5. **RLIMIT_FSIZE** — the real OS refuses writes over a tiny file-size
   cap (EFBIG with SIGXFSZ ignored); same contract as phase 4, no
   injection involved.
6. **Torn-tail / bit-rot fuzz** — in-process: random truncations and
   byte flips over WAL segments must replay to a clean *prefix* (never
   an exception, never reordered or invented entries); a corrupted
   checkpoint generation must quarantine and fall back to the previous
   generation.
7. **Service kill** (skippable with ``--skip-service``) — a 10-tenant
   ``repro serve`` session over loopback TCP is SIGKILLed between
   quiesced bursts and restarted from its ``--state-dir``; the drained
   final report (counters and alert tails) must match an uninterrupted
   reference session byte-for-byte, with zero degraded durability.

Usage::

    PYTHONPATH=src python scripts/chaos_crash.py --cycles 25
    PYTHONPATH=src python scripts/chaos_crash.py --cycles 5 --skip-service
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pickle
import random
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: Driver matrix: (driver, paper dialect, generator scale).  Scales are
#: tuned so every run holds 10k-20k records — enough for a dozen
#: checkpoints at CHECKPOINT_EVERY without slowing the cycle loop.
DRIVER_MATRIX = (
    ("serial", "bgl", 2e-3),
    ("sharded", "thunderbird", 5e-5),
    ("bounded", "liberty", 5e-5),
)
CHECKPOINT_EVERY = 400
SIGKILL_RC = -int(signal.SIGKILL)
RESULT_PREFIX = "RESULT "
REPORT_PREFIX = "REPORT "


# ---------------------------------------------------------------------------
# batch worker: one pipeline run in a subprocess the parent can SIGKILL
# ---------------------------------------------------------------------------


def _kill_after(records, n: int):
    """Yield records, then SIGKILL our own process after the n-th one —
    the 'power cord' failure the durable state must survive."""
    count = 0
    for record in records:
        yield record
        count += 1
        if count >= n:
            os.kill(os.getpid(), signal.SIGKILL)


def _driver_knobs(driver: str):
    from repro.parallel.config import ParallelConfig
    from repro.resilience.backpressure import BackpressureConfig

    if driver == "serial":
        return None, None
    if driver == "sharded":
        return ParallelConfig(workers=2, batch_size=256), None
    if driver == "bounded":
        # Roomy buffers: bounded-mode output stays byte-identical to
        # serial (nothing sheds), so the fingerprint check is exact.
        return None, BackpressureConfig(
            max_buffer=1024, filter_buffer=256,
            arrival_batch=256, service_batch=256, filter_batch=256,
        )
    raise SystemExit(f"unknown driver {driver!r}")


def result_fingerprint(result) -> str:
    """A digest over everything the run *claims* about the log: volume
    statistics, both alert streams, the Table-4 category counts, and the
    dead-letter tally.  Runtime dynamics (throughput, queue peaks) are
    deliberately excluded — a resumed run legitimately differs there."""
    parts = [
        repr(result.stats),
        repr([(a.timestamp, a.source, a.category) for a in result.raw_alerts]),
        repr([
            (a.timestamp, a.source, a.category)
            for a in result.filtered_alerts
        ]),
        repr(sorted(result.category_counts().items())),
        repr(result.corrupted_messages),
        repr(result.dead_letters.quarantined if result.dead_letters else 0),
    ]
    prediction = getattr(result, "prediction", None)
    if prediction is not None:
        # A predict-enabled run widens the claim: the exact warning
        # stream, ensemble membership, refit schedule, and correlation
        # graph must all survive kill/recover.
        parts += [
            repr([
                (w.t, w.category, w.score, w.kind, w.valid_from, w.valid_until)
                for w in prediction.warnings
            ]),
            repr(prediction.warnings_emitted),
            repr([
                (m.target, m.kind, m.precision, m.recall, m.f1)
                for m in prediction.members
            ]),
            repr(prediction.refits),
            repr(prediction.observed),
            repr(prediction.graph),
        ]
    payload = "\n".join(parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def batch_worker(args) -> int:
    restore_fsize = None
    if args.rlimit_fsize:
        import resource

        # Without this the kernel delivers SIGXFSZ and kills us instead
        # of letting write() return EFBIG for the store to account.
        signal.signal(signal.SIGXFSZ, signal.SIG_IGN)
        _, hard = resource.getrlimit(resource.RLIMIT_FSIZE)
        resource.setrlimit(resource.RLIMIT_FSIZE, (args.rlimit_fsize, hard))
        # The cap covers *every* file this process writes, including our
        # own result line; lift it again once the pipeline is done.
        restore_fsize = lambda: resource.setrlimit(  # noqa: E731
            resource.RLIMIT_FSIZE, (hard, hard)
        )

    from repro import api
    from repro.resilience.checkpoint import CheckpointManager
    from repro.resilience.deadletter import DeadLetterQueue
    from repro.simulation.generator import generate_log

    records = list(
        generate_log(args.system, scale=args.scale, seed=args.seed).records
    )
    source = iter(records)
    if args.kill_at_record:
        source = _kill_after(source, args.kill_at_record)
    parallel, backpressure = _driver_knobs(args.driver)
    checkpointer = (
        CheckpointManager(every=args.checkpoint_every)
        if args.state_dir else None
    )
    token = (
        f"chaos|driver={args.driver}|system={args.system}"
        f"|scale={args.scale!r}|seed={args.seed}"
        f"|predict={'on' if args.predict else 'off'}"
    )
    result = api.run_stream(
        source, args.system,
        dead_letters=DeadLetterQueue(capacity=len(records) + 1),
        checkpointer=checkpointer,
        backpressure=backpressure, parallel=parallel,
        state_dir=args.state_dir or None, state_token=token,
        predict=bool(args.predict),
    )
    if restore_fsize is not None:
        restore_fsize()
    store = checkpointer.store if checkpointer is not None else None
    print(RESULT_PREFIX + json.dumps({
        "fingerprint": result_fingerprint(result),
        "records": len(records),
        "raw_alerts": len(result.raw_alerts),
        "filtered_alerts": len(result.filtered_alerts),
        "warnings": (
            result.prediction.warnings_emitted
            if result.prediction is not None else None
        ),
        "taken": checkpointer.taken if checkpointer is not None else 0,
        "saved": store.saved if store is not None else 0,
        "fs_ops": (
            getattr(store.fs, "ops", None) if store is not None else None
        ),
        "durability": store.status.as_dict() if store is not None else None,
    }), flush=True)
    return 0


def _worker_env(extra: dict = None) -> dict:
    from repro.resilience import faults

    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONDONTWRITEBYTECODE"] = "1"
    # Hygiene: a fault armed in *our* environment must not leak into
    # workers that did not ask for it.
    for key in (faults.ENV_FAULT_FS_KILL_AT, faults.ENV_FAULT_FS_FAIL_AFTER,
                faults.ENV_FAULT_FS_ERRNO):
        env.pop(key, None)
    if extra:
        env.update(extra)
    return env


class _WorkerOutput:
    """What a finished batch worker left behind (mirrors the two
    ``subprocess`` attributes the phase code reads)."""

    def __init__(self, stdout: str, stderr: str):
        self.stdout = stdout
        self.stderr = stderr


def run_batch_worker(
    driver: str, system: str, scale: float, seed: int,
    state_dir=None, kill_at_record=None, fault_env=None, rlimit_fsize=0,
    predict=False,
):
    cmd = [
        sys.executable, str(Path(__file__).resolve()), "--worker", "batch",
        "--driver", driver, "--system", system, "--scale", repr(scale),
        "--seed", str(seed), "--checkpoint-every", str(CHECKPOINT_EVERY),
    ]
    if predict:
        cmd += ["--predict"]
    if state_dir:
        cmd += ["--state-dir", str(state_dir)]
    if kill_at_record:
        cmd += ["--kill-at-record", str(kill_at_record)]
    if rlimit_fsize:
        cmd += ["--rlimit-fsize", str(rlimit_fsize)]
    # File-backed output and a fresh process group: a SIGKILLed sharded
    # run leaves pool children holding inherited pipe ends (a pipe-based
    # capture would wait on them forever), so we wait on the worker pid
    # alone and then sweep the whole group.
    with tempfile.TemporaryFile(mode="w+") as stdout, \
            tempfile.TemporaryFile(mode="w+") as stderr:
        proc = subprocess.Popen(
            cmd, env=_worker_env(fault_env), stdout=stdout, stderr=stderr,
            text=True, start_new_session=True,
        )
        try:
            returncode = proc.wait(timeout=600)
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass
        stdout.seek(0)
        stderr.seek(0)
        out_text, err_text = stdout.read(), stderr.read()
    result = None
    for line in out_text.splitlines():
        if line.startswith(RESULT_PREFIX):
            result = json.loads(line[len(RESULT_PREFIX):])
    return returncode, result, _WorkerOutput(out_text, err_text)


# ---------------------------------------------------------------------------
# phases 1-5: baselines, kill cycles (plain + prediction), full-disk,
# file-size cap
# ---------------------------------------------------------------------------


def compute_baselines(args, failures):
    """Uninterrupted fingerprints per driver, in-memory vs durable, plus
    the record / fs-op counts the kill phases draw their points from."""
    from repro.resilience import faults

    baselines = {}
    for driver, system, scale in DRIVER_MATRIX:
        rc, plain, proc = run_batch_worker(driver, system, scale, args.seed)
        if rc != 0 or plain is None:
            failures.append(
                f"baseline {driver}: rc={rc}: {proc.stderr[-500:]}"
            )
            continue
        probe_dir = Path(args.tmp) / f"probe-{driver}"
        # fail_after far beyond any real op count: the FaultyFilesystem
        # arms (so ops are counted) but never actually fails.
        rc, durable, proc = run_batch_worker(
            driver, system, scale, args.seed, state_dir=probe_dir,
            fault_env={faults.ENV_FAULT_FS_FAIL_AFTER: "1000000000"},
        )
        if rc != 0 or durable is None:
            failures.append(
                f"baseline {driver} (durable): rc={rc}: {proc.stderr[-500:]}"
            )
            continue
        if durable["fingerprint"] != plain["fingerprint"]:
            failures.append(
                f"baseline {driver}: durable run diverged from in-memory run"
            )
        if durable["saved"] < 2:
            failures.append(
                f"baseline {driver}: only {durable['saved']} checkpoints "
                f"persisted over {plain['records']} records; kill cycles "
                "need at least 2"
            )
        baselines[driver] = {
            "system": system, "scale": scale,
            "fingerprint": plain["fingerprint"],
            "records": plain["records"],
            "fs_ops": durable["fs_ops"],
            "raw_alerts": plain["raw_alerts"],
        }
        print(f"  baseline {driver:8s} ({system}): "
              f"{plain['records']:,} records, {plain['raw_alerts']:,} "
              f"alerts, {durable['fs_ops']} fs ops, "
              f"{durable['saved']} checkpoints")
    return baselines


def kill_cycle_phase(args, rng, baselines, failures):
    from repro.resilience import faults

    kills = record_kills = fs_kills = 0
    for cycle in range(args.cycles):
        driver, system, scale = DRIVER_MATRIX[cycle % len(DRIVER_MATRIX)]
        base = baselines.get(driver)
        if base is None:
            continue
        state_dir = Path(args.tmp) / f"cycle-{cycle:03d}"
        planned = 1 + (rng.random() < 0.35)
        final = None
        # planned armed attempts, then up to 2 clean restarts to finish.
        for attempt in range(planned + 2):
            armed = attempt < planned
            kill_at_record, fault_env = None, None
            if armed and cycle % 2 == 0:
                kill_at_record = rng.randrange(
                    CHECKPOINT_EVERY // 2, base["records"]
                )
            elif armed:
                fault_env = {
                    faults.ENV_FAULT_FS_KILL_AT:
                        str(rng.randrange(0, max(1, base["fs_ops"]))),
                }
            rc, out, proc = run_batch_worker(
                driver, system, scale, args.seed, state_dir=state_dir,
                kill_at_record=kill_at_record, fault_env=fault_env,
            )
            if rc == 0 and out is not None:
                final = out
                break
            if rc != SIGKILL_RC:
                failures.append(
                    f"cycle {cycle} ({driver}): worker died rc={rc} "
                    f"(not SIGKILL): {proc.stderr[-500:]}"
                )
                break
            kills += 1
            if fault_env is not None:
                fs_kills += 1
            else:
                record_kills += 1
        if final is None:
            if not failures or f"cycle {cycle}" not in failures[-1]:
                failures.append(
                    f"cycle {cycle} ({driver}): never completed after "
                    f"{planned + 2} attempts"
                )
            continue
        if final["fingerprint"] != base["fingerprint"]:
            failures.append(
                f"cycle {cycle} ({driver}): recovered output diverged "
                "from the uninterrupted baseline"
            )
        if final["durability"] and final["durability"]["degraded"]:
            failures.append(
                f"cycle {cycle} ({driver}): unexpected degraded "
                f"durability: {final['durability']['reason']}"
            )
    print(f"  {args.cycles} cycles, {kills} SIGKILLs "
          f"({record_kills} between records, {fs_kills} inside durability "
          "writes), all recoveries byte-identical"
          if not failures else
          f"  {args.cycles} cycles, {kills} SIGKILLs, "
          f"{len(failures)} failures so far")
    if kills < args.cycles:
        failures.append(
            f"only {kills} kills landed across {args.cycles} cycles; "
            "every cycle's first armed attempt should die"
        )
    if args.cycles >= 2 and not fs_kills:
        failures.append("no SIGKILL landed inside a durability write")


#: Online-prediction matrix: (driver, system, scale, generator seed).
#: These are the calibrated golden scenarios (see scripts/make_golden.py)
#: at the same seeds, so every run installs ensemble members and emits a
#: non-trivial warning stream for the widened fingerprint to pin.
PREDICT_MATRIX = (
    ("serial", "thunderbird", 3e-4, 11),
    ("sharded", "redstorm", 1e-4, 11),
)


def prediction_kill_phase(args, rng, failures):
    """Kill/recover with the prediction stage riding the run: the
    recovered warning stream, members, refits, and correlation graph
    must be byte-identical to the uninterrupted baseline's."""
    baselines = {}
    for driver, system, scale, seed in PREDICT_MATRIX:
        rc, base, proc = run_batch_worker(
            driver, system, scale, seed, predict=True
        )
        if rc != 0 or base is None:
            failures.append(
                f"predict baseline {driver}: rc={rc}: {proc.stderr[-500:]}"
            )
            continue
        if not base["warnings"]:
            failures.append(
                f"predict baseline {driver} ({system}): no warnings "
                "emitted — the prediction fingerprint would pin nothing"
            )
        baselines[driver] = base
        print(f"  baseline {driver:8s} ({system}): "
              f"{base['records']:,} records, {base['warnings']} warnings")

    kills = 0
    for cycle in range(args.predict_cycles):
        driver, system, scale, seed = PREDICT_MATRIX[
            cycle % len(PREDICT_MATRIX)
        ]
        base = baselines.get(driver)
        if base is None:
            continue
        state_dir = Path(args.tmp) / f"predict-{cycle:03d}"
        kill_at = rng.randrange(CHECKPOINT_EVERY // 2, base["records"])
        final = None
        for attempt in range(3):  # one armed attempt, two clean restarts
            rc, out, proc = run_batch_worker(
                driver, system, scale, seed, state_dir=state_dir,
                kill_at_record=kill_at if attempt == 0 else None,
                predict=True,
            )
            if rc == 0 and out is not None:
                final = out
                break
            if rc != SIGKILL_RC:
                failures.append(
                    f"predict cycle {cycle} ({driver}): worker died "
                    f"rc={rc} (not SIGKILL): {proc.stderr[-500:]}"
                )
                break
            kills += 1
        if final is None:
            if not failures or f"predict cycle {cycle}" not in failures[-1]:
                failures.append(
                    f"predict cycle {cycle} ({driver}): never completed"
                )
            continue
        if final["fingerprint"] != base["fingerprint"]:
            failures.append(
                f"predict cycle {cycle} ({driver}, killed at record "
                f"{kill_at}): recovered prediction output diverged from "
                "the uninterrupted baseline"
            )
        if final["durability"] and final["durability"]["degraded"]:
            failures.append(
                f"predict cycle {cycle} ({driver}): unexpected degraded "
                f"durability: {final['durability']['reason']}"
            )
    print(f"  {args.predict_cycles} cycles, {kills} SIGKILLs, warning "
          "streams and correlation graphs recovered byte-identical"
          if not failures else
          f"  {args.predict_cycles} cycles, {kills} SIGKILLs, "
          f"{len(failures)} failures so far")
    if kills < args.predict_cycles and baselines:
        failures.append(
            f"only {kills} prediction kills landed across "
            f"{args.predict_cycles} cycles"
        )


def full_disk_phase(args, rng, baselines, failures):
    from repro.resilience import faults

    for i, errno_name in enumerate(("ENOSPC", "EIO", "ENOSPC")):
        driver, system, scale = DRIVER_MATRIX[i % len(DRIVER_MATRIX)]
        base = baselines.get(driver)
        if base is None:
            continue
        state_dir = Path(args.tmp) / f"enospc-{i}"
        fail_after = rng.randrange(0, max(1, base["fs_ops"] // 2))
        rc, out, proc = run_batch_worker(
            driver, system, scale, args.seed, state_dir=state_dir,
            fault_env={
                faults.ENV_FAULT_FS_FAIL_AFTER: str(fail_after),
                faults.ENV_FAULT_FS_ERRNO: errno_name,
            },
        )
        label = f"{errno_name} at op {fail_after} ({driver})"
        if rc != 0 or out is None:
            failures.append(
                f"full-disk {label}: run crashed rc={rc}: "
                f"{proc.stderr[-500:]}"
            )
            continue
        if out["fingerprint"] != base["fingerprint"]:
            failures.append(
                f"full-disk {label}: output diverged — a storage failure "
                "lost pipeline data"
            )
        status = out["durability"] or {}
        if not status.get("degraded"):
            failures.append(f"full-disk {label}: degraded mode not latched")
        unpersisted = status.get("unpersisted_checkpoints", 0)
        if out["taken"] != out["saved"] + unpersisted:
            failures.append(
                f"full-disk {label}: accounting broken — taken "
                f"{out['taken']} != saved {out['saved']} + unpersisted "
                f"{unpersisted}"
            )
        if unpersisted < 1:
            failures.append(
                f"full-disk {label}: nothing was unpersisted; the fault "
                "never landed"
            )
        print(f"  {label}: completed degraded, {out['saved']} saved + "
              f"{unpersisted} unpersisted = {out['taken']} taken, "
              "output intact")


def rlimit_phase(args, baselines, failures):
    driver, system, scale = DRIVER_MATRIX[0]
    base = baselines.get(driver)
    if base is None:
        return
    state_dir = Path(args.tmp) / "rlimit"
    rc, out, proc = run_batch_worker(
        driver, system, scale, args.seed, state_dir=state_dir,
        rlimit_fsize=512,
    )
    if rc != 0 or out is None:
        failures.append(
            f"rlimit-fsize: run crashed rc={rc}: {proc.stderr[-500:]}"
        )
        return
    if out["fingerprint"] != base["fingerprint"]:
        failures.append("rlimit-fsize: output diverged under EFBIG")
    status = out["durability"] or {}
    if not status.get("degraded"):
        failures.append("rlimit-fsize: degraded mode not latched under "
                        "a real kernel file-size cap")
    if status.get("unpersisted_checkpoints", 0) < 1:
        failures.append("rlimit-fsize: no checkpoint was refused")
    print(f"  RLIMIT_FSIZE=512: completed degraded "
          f"({status.get('unpersisted_checkpoints')} checkpoints refused "
          "by the kernel), output intact")


# ---------------------------------------------------------------------------
# phase 6: torn-tail / bit-rot fuzz (in-process)
# ---------------------------------------------------------------------------


def _fuzz_encode(payload, meta):
    from repro.resilience import wire

    return wire.encode_frame(pickle.dumps(
        {"meta": dict(meta), "payload": payload},
        protocol=pickle.HIGHEST_PROTOCOL,
    ))


def _fuzz_decode(data):
    obj = pickle.loads(data)
    return obj["payload"], obj["meta"]


def fuzz_phase(args, rng, failures):
    from repro.resilience.durability import CheckpointStore, SegmentedWal

    root = Path(args.tmp) / "fuzz"
    trials = args.fuzz_trials
    for trial in range(trials):
        directory = root / f"wal-{trial:03d}"
        segment_bytes = rng.choice((128, 256, 1 << 20))
        wal = SegmentedWal(
            str(directory), segment_bytes=segment_bytes, sync_every=1
        )
        entries = [
            ("op", (trial, i, "x" * rng.randrange(0, 64)))
            for i in range(rng.randrange(1, 24))
        ]
        for kind, obj in entries:
            wal.append(kind, obj)
        wal.close()
        names = wal.segments()
        if names:
            path = directory / rng.choice(names)
            data = path.read_bytes()
            if len(data) > 7 and rng.random() < 0.5:
                path.write_bytes(data[:rng.randrange(1, len(data))])
            elif data:
                i = rng.randrange(len(data))
                path.write_bytes(
                    data[:i] + bytes((data[i] ^ 0xFF,)) + data[i + 1:]
                )
        fresh = SegmentedWal(
            str(directory), segment_bytes=segment_bytes, sync_every=1
        )
        try:
            replayed = list(fresh.replay())
        except Exception as exc:  # noqa: BLE001 - the contract under test
            failures.append(f"wal fuzz {trial}: replay raised {exc!r}")
            continue
        if replayed != entries[:len(replayed)]:
            failures.append(
                f"wal fuzz {trial}: replay is not a clean prefix "
                f"({len(replayed)} of {len(entries)} entries)"
            )

    flips = 0
    for trial in range(max(8, trials // 4)):
        directory = root / f"ckpt-{trial:03d}"
        store = CheckpointStore(
            str(directory), token="fuzz",
            encode=_fuzz_encode, decode=_fuzz_decode,
        )
        for generation in range(1, 4):
            store.save({"generation": generation, "trial": trial})
        newest = sorted(
            n for n in os.listdir(directory)
            if n.startswith("gen-") and n.endswith(".ckpt")
        )[-1]
        path = directory / newest
        data = path.read_bytes()
        i = rng.randrange(len(data))
        path.write_bytes(data[:i] + bytes((data[i] ^ 0xFF,)) + data[i + 1:])
        flips += 1
        fresh = CheckpointStore(
            str(directory), token="fuzz",
            encode=_fuzz_encode, decode=_fuzz_decode,
        )
        try:
            payload = fresh.load()
        except Exception as exc:  # noqa: BLE001 - the contract under test
            failures.append(f"ckpt fuzz {trial}: load raised {exc!r}")
            continue
        if payload != {"generation": 2, "trial": trial}:
            failures.append(
                f"ckpt fuzz {trial}: corrupt newest generation did not "
                f"fall back to the previous one (got {payload!r})"
            )
        if not (directory / (newest + ".corrupt")).exists():
            failures.append(
                f"ckpt fuzz {trial}: corrupt generation not quarantined"
            )
    print(f"  {trials} WAL mutations + {flips} checkpoint bit-flips: "
          "every replay a clean prefix, every corrupt generation "
          "quarantined with fallback")


# ---------------------------------------------------------------------------
# phase 7 + worker: SIGKILL a live multi-tenant serve session
# ---------------------------------------------------------------------------


def serve_worker(args) -> int:
    import asyncio

    from repro.service import IngestService, ServiceConfig

    async def run() -> None:
        config = ServiceConfig(
            state_dir=args.state_dir or None,
            checkpoint_every=1,       # every drained burst is durable
            enable_udp=False,
            max_buffer=1 << 16,       # roomy: nothing sheds, so the
            dead_letter_capacity=200_000,  # reference run is exact
            alert_tail=64,
            idle_ttl=3600.0,
            housekeeping_interval=0.05,
            drain_timeout=60.0,
        )
        service = IngestService(config)
        await service.start()
        print(json.dumps(
            {"tcp": service.tcp_port, "stats": service.stats_port}
        ), flush=True)
        await service.run_until_stopped(install_signals=True)
        report = {}
        for tenant_id in sorted(
            set(service.router.tenants) | set(service.router.parked)
        ):
            row = service.tenant_stats(tenant_id)
            tail = service.alert_tail(tenant_id) or []
            row["alert_tail"] = [
                [a.timestamp, a.source, a.category] for a in tail
            ]
            report[tenant_id] = row
        report["_durability"] = (
            service.router.state_store.status.as_dict()
            if service.router.state_store is not None else None
        )
        print(REPORT_PREFIX + json.dumps(report), flush=True)

    asyncio.run(run())
    return 0


class ServeWorker:
    """One serve subprocess; the parent kills or drains it."""

    def __init__(self, state_dir, stderr_path: Path):
        cmd = [sys.executable, str(Path(__file__).resolve()),
               "--worker", "serve"]
        if state_dir:
            cmd += ["--state-dir", str(state_dir)]
        self._stderr = open(stderr_path, "ab")
        self.proc = subprocess.Popen(
            cmd, env=_worker_env(), stdout=subprocess.PIPE,
            stderr=self._stderr, text=True,
        )
        line = self.proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"serve worker died on startup (stderr: {stderr_path})"
            )
        ports = json.loads(line)
        self.tcp_port = ports["tcp"]
        self.stats_port = ports["stats"]

    def kill(self) -> None:
        self.proc.kill()
        self.proc.wait(timeout=30)
        self.proc.stdout.close()
        self._stderr.close()

    def drain_report(self):
        self.proc.send_signal(signal.SIGTERM)
        report = None
        for line in self.proc.stdout:
            if line.startswith(REPORT_PREFIX):
                report = json.loads(line[len(REPORT_PREFIX):])
        self.proc.wait(timeout=120)
        self.proc.stdout.close()
        self._stderr.close()
        return report


def build_service_feed(tenants: int, scale: float, seed: int):
    """Per-tenant wire lines across all five dialects, rendered exactly
    as ``tests/service`` and the soak harness do."""
    from repro.logio.writer import renderer_for
    from repro.service.router import format_envelope
    from repro.simulation.generator import generate_log
    from repro.systems.specs import SYSTEMS

    systems = sorted(SYSTEMS)
    feeds = {}
    for index in range(tenants):
        system = systems[index % len(systems)]
        records = generate_log(
            system, scale=scale, seed=seed + index
        ).records
        render = renderer_for(system)
        tenant_id = f"chaos{index:02d}-{system}"
        feeds[tenant_id] = [
            format_envelope(tenant_id, system, render(r)) for r in records
        ]
    return feeds


def _send_segment(port: int, segment) -> None:
    """Interleave every tenant's chunk round-robin over one connection."""
    lines, cursors = [], {tid: 0 for tid in segment}
    remaining = sum(len(chunk) for chunk in segment.values())
    while remaining:
        for tenant_id, chunk in segment.items():
            start = cursors[tenant_id]
            take = chunk[start:start + 64]
            if take:
                lines.extend(take)
                cursors[tenant_id] = start + len(take)
                remaining -= len(take)
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(("\n".join(lines) + "\n").encode("utf-8"))


def _wait_quiesced(stats_port: int, expected, timeout: float = 60.0) -> bool:
    """Poll the stats endpoint until every tenant has received all lines
    sent so far and drained its queue (two consecutive observations, so
    the worker has reached its post-batch checkpoint barrier)."""
    from repro.service import query_stats

    deadline = time.monotonic() + timeout
    streak = 0
    while time.monotonic() < deadline:
        try:
            stats = query_stats("127.0.0.1", stats_port)
        except (OSError, ValueError):
            time.sleep(0.05)
            continue
        rows = stats.get("tenants", {})
        quiet = all(
            rows.get(tid, {}).get("received", -1) == sent
            and rows.get(tid, {}).get("queue_depth", 1) == 0
            for tid, sent in expected.items()
        )
        streak = streak + 1 if quiet else 0
        if streak >= 2:
            return True
        time.sleep(0.05)
    return False


def run_service_session(feeds, state_dir, kills: int, stderr_path: Path):
    """Feed every tenant's lines in ``kills + 1`` bursts, SIGKILLing and
    restarting the serve process between bursts; returns the drained
    final report (or raises on session failure)."""
    segments = []
    for part in range(kills + 1):
        segment = {}
        for tenant_id, lines in feeds.items():
            size = (len(lines) + kills) // (kills + 1)
            chunk = lines[part * size:(part + 1) * size]
            if chunk:
                segment[tenant_id] = chunk
        segments.append(segment)

    sent = {tenant_id: 0 for tenant_id in feeds}
    worker = ServeWorker(state_dir, stderr_path)
    try:
        for index, segment in enumerate(segments):
            _send_segment(worker.tcp_port, segment)
            for tenant_id, chunk in segment.items():
                sent[tenant_id] += len(chunk)
            if not _wait_quiesced(worker.stats_port, sent):
                raise RuntimeError(
                    f"segment {index}: service never quiesced "
                    f"(sent so far: {sum(sent.values())})"
                )
            if index < len(segments) - 1:
                # The durable checkpoint happens right after the drained
                # batch the stats snapshot observed; give it a beat.
                time.sleep(0.4)
                worker.kill()
                worker = ServeWorker(state_dir, stderr_path)
        time.sleep(0.2)
        report = worker.drain_report()
    except Exception:
        worker.proc.kill()
        raise
    if report is None:
        raise RuntimeError("serve worker drained without a final report")
    return report


SERVICE_COMPARE_KEYS = (
    "received", "shed", "refused", "processed",
    "alerts_raw", "alerts_filtered",
)


def kill_service_check(
    tenants: int, scale: float, seed: int, kills: int, state_root,
) -> list:
    """The service-kill contract as a reusable list-of-failures check
    (the soak harness's ``--kill-service`` phase calls this too)."""
    failures = []
    state_root = Path(state_root)
    feeds = build_service_feed(tenants, scale, seed)
    total = sum(len(lines) for lines in feeds.values())
    print(f"  {tenants} tenants, {total:,} wire lines, {kills} SIGKILLs")

    reference = run_service_session(
        feeds, state_dir=None, kills=0,
        stderr_path=state_root / "serve-reference.stderr",
    )
    survived = run_service_session(
        feeds, state_dir=state_root / "serve-state", kills=kills,
        stderr_path=state_root / "serve-chaos.stderr",
    )

    resumes = 0
    for tenant_id in feeds:
        ref, got = reference.get(tenant_id), survived.get(tenant_id)
        if ref is None or got is None:
            failures.append(f"{tenant_id}: missing from a final report")
            continue
        for key in SERVICE_COMPARE_KEYS:
            if ref[key] != got[key]:
                failures.append(
                    f"{tenant_id}: {key} {got[key]} != reference "
                    f"{ref[key]} after {kills} kills"
                )
        if ref["alert_tail"] != got["alert_tail"]:
            failures.append(
                f"{tenant_id}: alert tail diverged from the "
                "uninterrupted reference"
            )
        if not got.get("conserves", False):
            failures.append(f"{tenant_id}: conservation broken after kills")
        resumes += got.get("resumes", 0)
    if resumes < tenants * kills:
        failures.append(
            f"only {resumes} resurrections across {tenants} tenants x "
            f"{kills} kills; the durable state was not actually used"
        )
    durability = survived.get("_durability") or {}
    if durability.get("degraded"):
        failures.append(
            f"service durability degraded: {durability.get('reason')}"
        )
    if not failures:
        print(f"  {resumes} resurrections; counters and alert tails "
              "byte-identical to the uninterrupted reference")
    return failures


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--cycles", type=int, default=25,
                        help="SIGKILL/recover cycles across the drivers")
    parser.add_argument("--predict-cycles", type=int, default=6,
                        help="SIGKILL/recover cycles with online "
                             "prediction riding the run")
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument("--fuzz-trials", type=int, default=60)
    parser.add_argument("--service-tenants", type=int, default=10)
    parser.add_argument("--service-scale", type=float, default=6e-6)
    parser.add_argument("--service-kills", type=int, default=2)
    parser.add_argument("--skip-service", action="store_true",
                        help="skip the serve-session kill phase")
    # internal: subprocess entrypoints
    parser.add_argument("--worker", choices=("batch", "serve"),
                        help=argparse.SUPPRESS)
    parser.add_argument("--driver", default="serial",
                        help=argparse.SUPPRESS)
    parser.add_argument("--system", default="bgl", help=argparse.SUPPRESS)
    parser.add_argument("--scale", type=float, default=2e-3,
                        help=argparse.SUPPRESS)
    parser.add_argument("--state-dir", default="", help=argparse.SUPPRESS)
    parser.add_argument("--checkpoint-every", type=int,
                        default=CHECKPOINT_EVERY, help=argparse.SUPPRESS)
    parser.add_argument("--kill-at-record", type=int, default=0,
                        help=argparse.SUPPRESS)
    parser.add_argument("--rlimit-fsize", type=int, default=0,
                        help=argparse.SUPPRESS)
    parser.add_argument("--predict", action="store_true",
                        help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.worker == "batch":
        return batch_worker(args)
    if args.worker == "serve":
        return serve_worker(args)

    rng = random.Random(args.seed)
    failures = []
    with tempfile.TemporaryDirectory(prefix="chaos-crash-") as tmp:
        args.tmp = tmp
        started = time.monotonic()

        print("phase 1: uninterrupted baselines")
        baselines = compute_baselines(args, failures)

        print(f"phase 2: {args.cycles} SIGKILL/recover cycles")
        kill_cycle_phase(args, rng, baselines, failures)

        print(f"phase 3: {args.predict_cycles} online-prediction "
              "SIGKILL/recover cycles")
        prediction_kill_phase(args, rng, failures)

        print("phase 4: full-disk (ENOSPC / EIO) degradation")
        full_disk_phase(args, rng, baselines, failures)

        print("phase 5: kernel file-size cap (RLIMIT_FSIZE / EFBIG)")
        rlimit_phase(args, baselines, failures)

        print("phase 6: torn-tail / bit-rot fuzz")
        fuzz_phase(args, rng, failures)

        if not args.skip_service:
            print("phase 7: serve-session SIGKILL / resurrection")
            try:
                failures.extend(kill_service_check(
                    args.service_tenants, args.service_scale, args.seed,
                    args.service_kills, tmp,
                ))
            except Exception as exc:  # noqa: BLE001 - harness boundary
                failures.append(f"service phase crashed: {exc!r}")

        elapsed = time.monotonic() - started

    if failures:
        print(f"\nFAIL ({elapsed:.1f}s): {len(failures)} violations")
        for failure in failures[:40]:
            print(f"  - {failure}")
        return 1
    print(f"\nOK ({elapsed:.1f}s): every SIGKILL recovered byte-identical; "
          "storage failures degraded with exact accounting; corruption "
          "replayed to clean prefixes")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Pipeline throughput report: serial vs. sharded-parallel tagging.

Runs the full pipeline (tag + spatio-temporal filter + stats) over a
deterministic synthetic Liberty stream — serially, then with 2/4/8
workers — and writes ``benchmarks/output/BENCH_pipeline.json`` recording
records/sec and speedup for each configuration, so the repo carries a
perf trajectory across commits.

Every parallel run is also checked for output equivalence against the
serial baseline before its number is recorded: a fast wrong pipeline is
not a result.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/bench_report.py [--records N]

``--records`` defaults to 1,000,000 (the ISSUE's benchmark size); use a
smaller value for a quick smoke run.  ``--engine`` skips the worker
sweep and runs only the engine driver matrix (the workload the CI perf
gate replays).  ``--store`` benchmarks the columnar alert store instead:
write overhead vs. a plain serial run, bytes/alert on disk, and scan /
aggregate throughput from the spilled store
(``benchmarks/output/BENCH_store.json`` — the perf gate ratchets the
write overhead from it).  Every row embeds ``cpu_count`` — speedup
numbers are only meaningful relative to the cores the host actually
has, and the perf gate reads the per-row value to decide which ratios a
host can be held to.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import api  # noqa: E402
from repro.core.tagging import RulesetHandle  # noqa: E402
from repro.engine.capabilities import CAPABILITY_TABLE  # noqa: E402
from repro.logmodel.record import LogRecord  # noqa: E402
from repro.parallel import ParallelConfig  # noqa: E402
from repro.resilience.backpressure import BackpressureConfig  # noqa: E402

OUTPUT = REPO / "benchmarks" / "output" / "BENCH_pipeline.json"
ENGINE_OUTPUT = REPO / "benchmarks" / "output" / "BENCH_engine.json"
PREDICTION_OUTPUT = REPO / "benchmarks" / "output" / "BENCH_prediction.json"
STORE_OUTPUT = REPO / "benchmarks" / "output" / "BENCH_store.json"

SYSTEM = "liberty"
WORKER_SWEEP = (2, 4, 8)
BATCH_SIZE = 2048

#: Alert density of the synthetic stream: one tagged record per ALERT_EVERY.
ALERT_EVERY = 11

#: Timing runs per engine-matrix row; the best is recorded.  Scheduler
#: noise on a shared host is one-sided — it only ever makes a run look
#: slower — so best-of-N converges on the code's speed, and the
#: committed baseline (which the perf gate ratchets against) is not an
#: artifact of one bad scheduling moment.
ENGINE_REPEATS = 2


def synthetic_stream(n: int):
    """Deterministic mixed Liberty stream: chaff with periodic alerts."""
    ruleset = RulesetHandle(SYSTEM).resolve()
    cats = [cat for cat in ruleset if cat.example]
    records = []
    for i in range(n):
        t = i * 0.05
        source = f"n{i % 29}"
        if i % ALERT_EVERY == 0:
            cat = cats[i % len(cats)]
            records.append(LogRecord(
                timestamp=t, source=source, facility=cat.facility,
                body=cat.example, system=SYSTEM,
            ))
        else:
            records.append(LogRecord(
                timestamp=t, source=source, facility="kernel",
                body="routine interconnect heartbeat ok", system=SYSTEM,
            ))
    return records


def timed_run(records, parallel=None, backpressure=None, predict=None,
              store_dir=None):
    t0 = time.perf_counter()
    result = api.run_stream(
        records, SYSTEM, parallel=parallel, backpressure=backpressure,
        predict=predict, store_dir=store_dir,
    )
    return result, time.perf_counter() - t0


def engine_driver_configs(workers: int):
    """One ``timed_run`` kwargs dict per engine driver row.  The bounded
    configs use throughput-sized ticks; buffers stay roomy and the source
    pausable, so output is exact (nothing shed) and the measured cost is
    the bounded pump itself.  The ``serial-predict`` row is the serial
    schedule with the online prediction stage observing the sink — its
    cost relative to plain serial is what the perf gate ratchets."""
    parallel = ParallelConfig(workers=workers, batch_size=BATCH_SIZE)
    bounded = BackpressureConfig(
        max_buffer=4 * BATCH_SIZE, filter_buffer=BATCH_SIZE,
        arrival_batch=BATCH_SIZE, service_batch=BATCH_SIZE,
        filter_batch=BATCH_SIZE,
    )
    return {
        "serial": {},
        "sharded": {"parallel": parallel},
        "bounded": {"backpressure": bounded},
        "bounded-sharded": {"parallel": parallel, "backpressure": bounded},
        "serial-predict": {"predict": True},
    }


def signature(result):
    """The observable output a configuration must reproduce exactly."""
    return (
        result.raw_alerts,
        result.filtered_alerts,
        result.stats.messages,
        result.stats.raw_bytes,
        result.category_counts(),
    )


def store_benchmark(records, hardware) -> int:
    """Columnar-store benchmark: write overhead vs. plain serial, disk
    footprint, and read-side throughput of the spilled store.  The
    store-backed run must stay output-equivalent to the in-memory run
    before any number is recorded, and the replayed store must agree
    with the run that wrote it."""
    from repro.store import AlertQuery, ColumnarStore, load_result

    n = len(records)
    best_serial = best_store = None
    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        for attempt in range(ENGINE_REPEATS):
            run = timed_run(records)
            if best_serial is None or run[1] < best_serial[1]:
                best_serial = run
            # A fresh directory per attempt: every timed write pays the
            # full begin(0) cost, never an incremental resume.
            run = timed_run(
                records, store_dir=os.path.join(tmp, f"s{attempt}")
            )
            if best_store is None or run[1] < best_store[1]:
                best_store = run
                store_root = os.path.join(tmp, f"s{attempt}")
        serial_result, serial_secs = best_serial
        store_result, store_secs = best_store
        if signature(store_result) != signature(serial_result):
            raise AssertionError("store-backed run diverged from serial")

        serial_rps = n / serial_secs
        store_rps = n / store_secs
        overhead = 1.0 - store_rps / serial_rps
        print(f"serial (memory) : {serial_rps:12,.0f} rec/s "
              f"({serial_secs:.2f}s)")
        print(f"serial + store  : {store_rps:12,.0f} rec/s "
              f"({store_secs:.2f}s)  write overhead {overhead:.1%}")

        store = ColumnarStore(store_root)
        alerts_n = store.count()
        disk_bytes = sum(part.meta.bytes for part in store.partitions)
        print(f"on disk         : {disk_bytes:,} bytes across "
              f"{len(store.partitions)} partitions "
              f"({disk_bytes / max(alerts_n, 1):,.1f} bytes/alert)")

        t0 = time.perf_counter()
        scanned = sum(1 for _ in AlertQuery(store))
        object_secs = time.perf_counter() - t0
        assert scanned == alerts_n
        t0 = time.perf_counter()
        ts = AlertQuery(store).timestamps()
        column_secs = time.perf_counter() - t0
        assert len(ts) == alerts_n
        t0 = time.perf_counter()
        counts = AlertQuery(store).count_by_category()
        aggregate_secs = time.perf_counter() - t0
        assert sum(raw for raw, _kept in counts.values()) == alerts_n
        replayed = load_result(store_root)
        if replayed.summary() != store_result.summary():
            raise AssertionError("replayed store summary diverged")
        print(f"object scan     : {alerts_n / object_secs:12,.0f} alerts/s")
        print(f"column scan     : {alerts_n / column_secs:12,.0f} rows/s")
        print(f"aggregate       : {aggregate_secs * 1e3:.2f} ms "
              "(count_by_category, manifest pushdown)")

    report = {
        "benchmark": "columnar_store",
        "system": SYSTEM,
        "records": n,
        "alerts": alerts_n,
        "alert_every": ALERT_EVERY,
        "hardware": hardware,
        "note": (
            "Write overhead is serial-with-store vs. plain serial on the "
            "same stream (best-of-N each); scans read the spilled store "
            "back.  The perf gate ratchets overhead_frac: the store can "
            "only get cheaper without a deliberate re-baseline."
        ),
        "write": {
            "serial_records_per_sec": round(serial_rps, 1),
            "store_records_per_sec": round(store_rps, 1),
            "overhead_frac": round(overhead, 4),
        },
        "disk": {
            "bytes": disk_bytes,
            "partitions": len(store.partitions),
            "bytes_per_alert": round(disk_bytes / max(alerts_n, 1), 2),
        },
        "read": {
            "object_scan_alerts_per_sec": round(alerts_n / object_secs, 1),
            "column_scan_rows_per_sec": round(alerts_n / column_secs, 1),
            "aggregate_ms": round(aggregate_secs * 1e3, 3),
        },
    }
    STORE_OUTPUT.parent.mkdir(exist_ok=True)
    STORE_OUTPUT.write_text(
        json.dumps(report, indent=1) + "\n", encoding="utf-8"
    )
    print(f"wrote {STORE_OUTPUT.relative_to(REPO)}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=1_000_000,
                        help="synthetic stream length (default: 1,000,000)")
    parser.add_argument("--engine", action="store_true",
                        help="run only the engine driver matrix (the perf-"
                             "gate workload), skipping the worker sweep")
    parser.add_argument("--store", action="store_true",
                        help="run only the columnar-store benchmark "
                             "(write overhead, disk footprint, scans)")
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count()
    hardware = {
        "cpu_count": cpu_count,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }

    print(f"building {args.records:,}-record synthetic {SYSTEM} stream ...")
    records = synthetic_stream(args.records)

    if args.store:
        return store_benchmark(records, hardware)

    if not args.engine:
        serial_result, serial_secs = timed_run(records)
        serial_rps = args.records / serial_secs
        baseline = signature(serial_result)
        print(f"serial          : {serial_rps:12,.0f} rec/s  "
              f"({serial_secs:.2f}s)")

        runs = []
        for workers in WORKER_SWEEP:
            config = ParallelConfig(workers=workers, batch_size=BATCH_SIZE)
            result, secs = timed_run(records, parallel=config)
            if signature(result) != baseline:
                raise AssertionError(
                    f"parallel run with {workers} workers diverged from serial"
                )
            rps = args.records / secs
            runs.append({
                "workers": workers,
                "batch_size": BATCH_SIZE,
                "cpu_count": cpu_count,
                "seconds": round(secs, 3),
                "records_per_sec": round(rps, 1),
                "speedup_vs_serial": round(rps / serial_rps, 3),
                "equivalent_to_serial": True,
            })
            print(f"workers={workers:<8}: {rps:12,.0f} rec/s  ({secs:.2f}s)  "
                  f"{rps / serial_rps:.2f}x")

        report = {
            "benchmark": "pipeline_throughput",
            "system": SYSTEM,
            "records": args.records,
            "alert_every": ALERT_EVERY,
            "hardware": hardware,
            "note": (
                "Speedup over serial is bounded by cpu_count: on a "
                "single-core host the parallel path pays IPC overhead with "
                "no extra compute to buy back."
            ),
            "serial": {
                "cpu_count": cpu_count,
                "seconds": round(serial_secs, 3),
                "records_per_sec": round(serial_rps, 1),
            },
            "parallel": runs,
        }
        OUTPUT.parent.mkdir(exist_ok=True)
        OUTPUT.write_text(
            json.dumps(report, indent=1) + "\n", encoding="utf-8"
        )
        print(f"wrote {OUTPUT.relative_to(REPO)}")

    # -- engine driver matrix: serial vs each execution driver ------------
    # Self-contained: the matrix's own serial row (first in the config
    # dict) is the equivalence baseline and speedup denominator, so
    # ``--engine`` needs no worker sweep to have run.
    engine_workers = min(4, cpu_count or 1)
    driver_runs = []
    engine_baseline = engine_serial_rps = None
    rps_by_driver = {}
    print(f"engine driver matrix ({engine_workers} workers where sharded):")
    for name, run_kwargs in engine_driver_configs(engine_workers).items():
        best = None
        for _ in range(ENGINE_REPEATS):
            attempt = timed_run(records, **run_kwargs)
            if best is None or attempt[1] < best[1]:
                best = attempt
        result, secs = best
        rps = args.records / secs
        rps_by_driver[name] = rps
        if engine_baseline is None:
            assert name == "serial", "serial must lead the driver matrix"
            engine_baseline = signature(result)
            engine_serial_rps = rps
        elif signature(result) != engine_baseline:
            raise AssertionError(f"driver {name!r} diverged from serial")
        caps = CAPABILITY_TABLE[name]
        driver_runs.append({
            "driver": name,
            "cpu_count": cpu_count,
            "workers": (
                engine_workers if run_kwargs.get("parallel") is not None
                else 1
            ),
            "seconds": round(secs, 3),
            "records_per_sec": round(rps, 1),
            "speedup_vs_serial": round(rps / engine_serial_rps, 3),
            "checkpoint_barrier": caps.checkpoint_barrier,
            "equivalence": caps.equivalence,
            "equivalent_to_serial": True,
        })
        print(f"{name:<16}: {rps:12,.0f} rec/s  ({secs:.2f}s)")

    # The online prediction stage's throughput cost, as a fraction of
    # plain serial — mirrored into BENCH_prediction.json (when present)
    # so the prediction bench carries the cost next to the quality
    # numbers it buys, and the perf gate can ratchet both from one file.
    predict_overhead = None
    if "serial-predict" in rps_by_driver:
        predict_overhead = round(
            1.0 - rps_by_driver["serial-predict"] / rps_by_driver["serial"],
            4,
        )
        print(f"prediction overhead vs serial: {predict_overhead:.1%}")
        if PREDICTION_OUTPUT.exists():
            pred_report = json.loads(PREDICTION_OUTPUT.read_text())
            pred_report["throughput"] = {
                "records": args.records,
                "serial_records_per_sec": round(rps_by_driver["serial"], 1),
                "serial_predict_records_per_sec": round(
                    rps_by_driver["serial-predict"], 1
                ),
                "overhead_frac": predict_overhead,
            }
            PREDICTION_OUTPUT.write_text(
                json.dumps(pred_report, indent=1) + "\n", encoding="utf-8"
            )
            print(f"updated {PREDICTION_OUTPUT.relative_to(REPO)} throughput")

    engine_report = {
        "benchmark": "engine_driver_matrix",
        "system": SYSTEM,
        "records": args.records,
        "alert_every": ALERT_EVERY,
        "workers": engine_workers,
        "batch_size": BATCH_SIZE,
        "hardware": hardware,
        "note": (
            "Every driver is equivalence-checked against the serial "
            "baseline before its number is recorded; the bounded rows "
            "measure the tick-pump overhead with buffers roomy enough "
            "that nothing is shed."
        ),
        "drivers": driver_runs,
    }
    ENGINE_OUTPUT.write_text(
        json.dumps(engine_report, indent=1) + "\n", encoding="utf-8"
    )
    print(f"wrote {ENGINE_OUTPUT.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

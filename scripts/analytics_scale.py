#!/usr/bin/env python
"""CI analytics-at-scale gate: a 10M-record stream through the columnar
store under a hard address-space cap, then the report replayed from disk.

The stream is a *generator* — records are produced, tagged, and spilled
without ever materializing the corpus (or the alert list) in memory.
The process runs with ``RLIMIT_AS`` capped at 4 GiB: an analytics path
that quietly accumulated per-alert Python objects would blow through the
cap and kill the job, while the columnar sink + incremental query layer
must stay comfortably inside.  After the run, ``repro report`` replays
every table and figure from the store directory alone — no pipeline
re-run — and the aggregates are checked against closed-form expectations
of the synthetic stream.

Failure conditions (any -> exit 1):

* the store's raw-alert count differs from the stream's known alert
  density (one tagged record per ``ALERT_EVERY``);
* the spilled store disagrees with the run that wrote it (counts,
  time bounds, manifest completeness);
* ``repro report`` fails, renders nothing, or reports degradation;
* peak RSS exceeds the soft memory budget (the hard RLIMIT would have
  killed the process already, this catches creep before it is fatal).

Usage: PYTHONPATH=src python scripts/analytics_scale.py [--records N]
"""

from __future__ import annotations

import argparse
import contextlib
import io
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

ADDRESS_SPACE_CAP = 4 * 1024**3  # hard kill for runaway accumulation
PEAK_RSS_BUDGET = 2 * 1024**3    # soft: catch creep long before the cap

SYSTEM = "liberty"
ALERT_EVERY = 11  # matches bench_report's synthetic density


def cap_address_space() -> bool:
    try:
        import resource
    except ImportError:  # non-POSIX platform: run uncapped
        return False
    soft, hard = resource.getrlimit(resource.RLIMIT_AS)
    cap = ADDRESS_SPACE_CAP if hard == resource.RLIM_INFINITY \
        else min(ADDRESS_SPACE_CAP, hard)
    resource.setrlimit(resource.RLIMIT_AS, (cap, hard))
    return True


def peak_rss_bytes() -> int:
    try:
        import resource
    except ImportError:
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    return rss * 1024 if sys.platform != "darwin" else rss


def stream(n: int):
    """``bench_report.synthetic_stream`` as a generator: the corpus is
    never held in memory, which is the whole point of this gate."""
    from repro.core.tagging import RulesetHandle
    from repro.logmodel.record import LogRecord

    cats = [cat for cat in RulesetHandle(SYSTEM).resolve() if cat.example]
    for i in range(n):
        t = i * 0.05
        source = f"n{i % 29}"
        if i % ALERT_EVERY == 0:
            cat = cats[i % len(cats)]
            yield LogRecord(
                timestamp=t, source=source, facility=cat.facility,
                body=cat.example, system=SYSTEM,
            )
        else:
            yield LogRecord(
                timestamp=t, source=source, facility="kernel",
                body="routine interconnect heartbeat ok", system=SYSTEM,
            )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=10_000_000,
                        help="stream length (default: 10,000,000)")
    args = parser.parse_args()

    if cap_address_space():
        print(f"address-space cap: {ADDRESS_SPACE_CAP / 1024**3:.1f} GiB")
    else:
        print("address-space cap: unavailable on this platform")

    from repro import api
    from repro.cli import main as cli_main
    from repro.store import ColumnarStore

    n = args.records
    expected_alerts = (n + ALERT_EVERY - 1) // ALERT_EVERY
    last_alert_t = ((n - 1) // ALERT_EVERY) * ALERT_EVERY * 0.05
    failures = []

    with tempfile.TemporaryDirectory(prefix="analytics-scale-") as tmp:
        store_dir = str(Path(tmp) / SYSTEM)
        print(f"spilling {n:,} records through the columnar sink ...")
        t0 = time.perf_counter()
        result = api.run_stream(stream(n), SYSTEM, store_dir=store_dir)
        write_secs = time.perf_counter() - t0
        print(f"  {n / write_secs:,.0f} rec/s; peak RSS so far "
              f"{peak_rss_bytes() / 1024**2:,.0f} MiB")

        store = ColumnarStore(store_dir)
        if store.count() != expected_alerts:
            failures.append(
                f"store holds {store.count():,} raw alerts, expected "
                f"{expected_alerts:,} (one per {ALERT_EVERY} records)"
            )
        if len(result.raw_alerts) != expected_alerts:
            failures.append(
                f"result view reports {len(result.raw_alerts):,} raw "
                f"alerts, expected {expected_alerts:,}"
            )
        bounds = store.time_bounds()
        if bounds != (0.0, last_alert_t):
            failures.append(
                f"store time bounds {bounds} != (0.0, {last_alert_t})"
            )
        if not store.complete:
            failures.append("store manifest not marked complete")
        if store.degraded:
            failures.append(f"store degraded: {store.degraded[:3]}")
        by_cat = store.count_by_category()
        if sum(raw for raw, _kept in by_cat.values()) != expected_alerts:
            failures.append("per-category raw counts do not sum to total")

        print(f"replaying report from {len(store.partitions)} partitions "
              "(no pipeline re-run) ...")
        t0 = time.perf_counter()
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            rc = cli_main(["report", tmp])
        replay_secs = time.perf_counter() - t0
        rendered = out.getvalue()
        print(f"  report rendered in {replay_secs:.1f}s "
              f"({len(rendered):,} chars)")
        if rc != 0:
            failures.append(f"repro report exited {rc}")
        if "Table 2" not in rendered or "Figure" not in rendered:
            failures.append("replayed report is missing tables or figures")
        if f"{expected_alerts:,}" not in rendered:
            failures.append(
                f"replayed tables never show the raw alert count "
                f"{expected_alerts:,}"
            )

    peak = peak_rss_bytes()
    print(f"peak RSS: {peak / 1024**2:,.0f} MiB "
          f"(budget {PEAK_RSS_BUDGET / 1024**2:,.0f} MiB)")
    if peak > PEAK_RSS_BUDGET:
        failures.append(
            f"peak RSS {peak / 1024**2:,.0f} MiB exceeds the "
            f"{PEAK_RSS_BUDGET / 1024**2:,.0f} MiB budget: something is "
            "accumulating per-alert state in memory"
        )

    if failures:
        print(f"\nFAIL: {len(failures)} analytics-scale violations")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: 10M-record-class analytics ran spilled, report replayed "
          "from disk, memory bounded")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Shared fixtures: small generated logs, cached per test session.

Generation is deterministic, so caching materialized streams is safe and
keeps the suite fast — the big systems are only generated once.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import api as pipeline
from repro.core.categories import Alert, AlertType
from repro.logmodel.record import LogRecord

#: Scales small enough for unit-test speed, large enough for structure.
SMALL_SCALE = 2e-5
MEDIUM_SCALE = 1e-3

SEED = 20070625  # DSN 2007 conference date

#: Worker count for parallel-path tests.  The CI matrix job widens this
#: via REPRO_PARALLEL_WORKERS; the default of 2 keeps local runs cheap
#: while still crossing a real process boundary.
ENV_WORKERS = int(os.environ.get("REPRO_PARALLEL_WORKERS", "2"))


@pytest.fixture(scope="session")
def env_workers() -> int:
    return ENV_WORKERS


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(SEED)


@pytest.fixture(scope="session")
def liberty_result():
    """Full pipeline over a small Liberty log (cheapest rich system)."""
    return pipeline.run_system("liberty", scale=SMALL_SCALE, seed=SEED)


@pytest.fixture(scope="session")
def bgl_result():
    """Full pipeline over a medium BG/L log (it is tiny even at 1e-3)."""
    return pipeline.run_system("bgl", scale=MEDIUM_SCALE, seed=SEED)


@pytest.fixture(scope="session")
def redstorm_result():
    return pipeline.run_system("redstorm", scale=SMALL_SCALE, seed=SEED)


@pytest.fixture(scope="session")
def spirit_result():
    return pipeline.run_system("spirit", scale=SMALL_SCALE, seed=SEED)


@pytest.fixture(scope="session")
def thunderbird_result():
    return pipeline.run_system("thunderbird", scale=SMALL_SCALE, seed=SEED)


@pytest.fixture(scope="session")
def all_results(
    bgl_result, thunderbird_result, redstorm_result, spirit_result,
    liberty_result,
):
    return {
        "bgl": bgl_result,
        "thunderbird": thunderbird_result,
        "redstorm": redstorm_result,
        "spirit": spirit_result,
        "liberty": liberty_result,
    }


def make_alert(
    t: float,
    source: str = "n1",
    category: str = "CAT",
    alert_type: AlertType = AlertType.SOFTWARE,
    system: str = "test",
) -> Alert:
    """Hand-built alert for filter/analysis unit tests."""
    record = LogRecord(
        timestamp=t,
        source=source,
        facility="kernel",
        body=f"synthetic {category}",
        system=system,
    )
    return Alert(
        timestamp=t,
        source=source,
        category=category,
        alert_type=alert_type,
        record=record,
    )

"""Unit tests for the per-category predictor ensemble."""

import numpy as np

from repro.prediction.ensemble import PredictorEnsemble
from repro.prediction.features import AlertHistory

from ..conftest import make_alert


def _two_signature_history():
    """Two failure categories with *different* signatures, repeating
    identically across train/validation/test thirds:

    * SIGNALED failures are always preceded by a PRE alert ~5 min earlier
      (precursor-predictable);
    * RANDOM failures arrive alone (no signature).
    """
    rng = np.random.default_rng(21)
    alerts = []
    t = 0.0
    for _ in range(60):
        t += float(rng.uniform(2e4, 4e4))
        alerts.append(make_alert(t, category="PRE"))
        alerts.append(make_alert(t + 300.0, category="SIGNALED"))
    t = 500.0
    for _ in range(60):
        t += float(rng.uniform(2e4, 4e4))
        alerts.append(make_alert(t, category="RANDOM"))
    return AlertHistory(alerts)


class TestEnsemble:
    def test_routes_signaled_category_to_precursor(self):
        history = _two_signature_history()
        t0, t1 = history.first_time(), history.last_time()
        cut1 = t0 + (t1 - t0) * 0.5
        cut2 = t0 + (t1 - t0) * 0.75
        ensemble = PredictorEnsemble(min_f1=0.3)
        ensemble.fit(history, (t0, cut1), (cut1, cut2))
        assert "SIGNALED" in ensemble.members
        assert ensemble.members["SIGNALED"].kind == "precursor"

    def test_unsignatured_category_gets_no_member(self):
        """'Different categories of failures have different predictive
        signatures (if any)' — RANDOM has none, so the ensemble must stay
        silent rather than alarm on noise."""
        history = _two_signature_history()
        t0, t1 = history.first_time(), history.last_time()
        cut1 = t0 + (t1 - t0) * 0.5
        cut2 = t0 + (t1 - t0) * 0.75
        ensemble = PredictorEnsemble(min_f1=0.3)
        ensemble.fit(history, (t0, cut1), (cut1, cut2))
        assert "RANDOM" not in ensemble.members

    def test_test_span_scores(self):
        history = _two_signature_history()
        t0, t1 = history.first_time(), history.last_time()
        cut1 = t0 + (t1 - t0) * 0.5
        cut2 = t0 + (t1 - t0) * 0.75
        ensemble = PredictorEnsemble(min_f1=0.3)
        ensemble.fit(history, (t0, cut1), (cut1, cut2))
        scores = ensemble.score(history, cut2, t1)
        assert scores["SIGNALED"].recall > 0.7
        assert scores["SIGNALED"].precision > 0.7

    def test_warnings_merged_and_sorted(self):
        history = _two_signature_history()
        t0, t1 = history.first_time(), history.last_time()
        cut1 = t0 + (t1 - t0) * 0.5
        cut2 = t0 + (t1 - t0) * 0.75
        ensemble = PredictorEnsemble(min_f1=0.3)
        ensemble.fit(history, (t0, cut1), (cut1, cut2))
        warnings = ensemble.warnings(history, cut2, t1)
        times = [w.t for w in warnings]
        assert times == sorted(times)

    def test_summary_renders(self):
        history = _two_signature_history()
        t0, t1 = history.first_time(), history.last_time()
        cut1 = t0 + (t1 - t0) * 0.5
        cut2 = t0 + (t1 - t0) * 0.75
        ensemble = PredictorEnsemble(min_f1=0.3)
        ensemble.fit(history, (t0, cut1), (cut1, cut2))
        text = ensemble.summary()
        assert "SIGNALED" in text

    def test_sparse_categories_skipped(self):
        history = AlertHistory([make_alert(1.0, category="ONCE")])
        ensemble = PredictorEnsemble()
        ensemble.fit(history, (0.0, 0.5), (0.5, 2.0))
        assert ensemble.members == {}
        assert "(none" in ensemble.summary()

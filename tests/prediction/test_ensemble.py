"""Unit tests for the per-category predictor ensemble."""

import numpy as np

from repro.prediction.base import Predictor, Warning_
from repro.prediction.ensemble import PredictorEnsemble
from repro.prediction.features import AlertHistory

from ..conftest import make_alert


def _two_signature_history():
    """Two failure categories with *different* signatures, repeating
    identically across train/validation/test thirds:

    * SIGNALED failures are always preceded by a PRE alert ~5 min earlier
      (precursor-predictable);
    * RANDOM failures arrive alone (no signature).
    """
    rng = np.random.default_rng(21)
    alerts = []
    t = 0.0
    for _ in range(60):
        t += float(rng.uniform(2e4, 4e4))
        alerts.append(make_alert(t, category="PRE"))
        alerts.append(make_alert(t + 300.0, category="SIGNALED"))
    t = 500.0
    for _ in range(60):
        t += float(rng.uniform(2e4, 4e4))
        alerts.append(make_alert(t, category="RANDOM"))
    return AlertHistory(alerts)


class TestEnsemble:
    def test_routes_signaled_category_to_precursor(self):
        history = _two_signature_history()
        t0, t1 = history.first_time(), history.last_time()
        cut1 = t0 + (t1 - t0) * 0.5
        cut2 = t0 + (t1 - t0) * 0.75
        ensemble = PredictorEnsemble(min_f1=0.3)
        ensemble.fit(history, (t0, cut1), (cut1, cut2))
        assert "SIGNALED" in ensemble.members
        assert ensemble.members["SIGNALED"].kind == "precursor"

    def test_unsignatured_category_gets_no_member(self):
        """'Different categories of failures have different predictive
        signatures (if any)' — RANDOM has none, so the ensemble must stay
        silent rather than alarm on noise."""
        history = _two_signature_history()
        t0, t1 = history.first_time(), history.last_time()
        cut1 = t0 + (t1 - t0) * 0.5
        cut2 = t0 + (t1 - t0) * 0.75
        ensemble = PredictorEnsemble(min_f1=0.3)
        ensemble.fit(history, (t0, cut1), (cut1, cut2))
        assert "RANDOM" not in ensemble.members

    def test_test_span_scores(self):
        history = _two_signature_history()
        t0, t1 = history.first_time(), history.last_time()
        cut1 = t0 + (t1 - t0) * 0.5
        cut2 = t0 + (t1 - t0) * 0.75
        ensemble = PredictorEnsemble(min_f1=0.3)
        ensemble.fit(history, (t0, cut1), (cut1, cut2))
        scores = ensemble.score(history, cut2, t1)
        assert scores["SIGNALED"].recall > 0.7
        assert scores["SIGNALED"].precision > 0.7

    def test_warnings_merged_and_sorted(self):
        history = _two_signature_history()
        t0, t1 = history.first_time(), history.last_time()
        cut1 = t0 + (t1 - t0) * 0.5
        cut2 = t0 + (t1 - t0) * 0.75
        ensemble = PredictorEnsemble(min_f1=0.3)
        ensemble.fit(history, (t0, cut1), (cut1, cut2))
        warnings = ensemble.warnings(history, cut2, t1)
        times = [w.t for w in warnings]
        assert times == sorted(times)

    def test_summary_renders(self):
        history = _two_signature_history()
        t0, t1 = history.first_time(), history.last_time()
        cut1 = t0 + (t1 - t0) * 0.5
        cut2 = t0 + (t1 - t0) * 0.75
        ensemble = PredictorEnsemble(min_f1=0.3)
        ensemble.fit(history, (t0, cut1), (cut1, cut2))
        text = ensemble.summary()
        assert "SIGNALED" in text

    def test_sparse_categories_skipped(self):
        history = AlertHistory([make_alert(1.0, category="ONCE")])
        ensemble = PredictorEnsemble()
        ensemble.fit(history, (0.0, 0.5), (0.5, 2.0))
        assert ensemble.members == {}
        assert "(none" in ensemble.summary()


class ScriptedPredictor(Predictor):
    """Warns at fixed times — lets a test dictate validation scores."""

    def __init__(self, target, warn_times):
        self.target = target
        self._times = warn_times

    def train(self, history, t0, t1):
        pass

    def warnings(self, history, t0, t1):
        return [Warning_(t=t, category=self.target, score=1.0)
                for t in self._times if t0 <= t < t1]


def scripted(warn_times):
    return lambda target: ScriptedPredictor(target, warn_times)


class TestSelectionGuards:
    """The two selection guarantees the online ensemble builds on:
    a cries-wolf candidate is never selectable, and ties are broken
    deterministically (alphabetically first kind wins)."""

    #: Failures every 1000 s; scoring lead window [10, 500] so each
    #: warning can credit exactly one failure.
    FAILURES = (1000.0, 2000.0, 3000.0, 4000.0)
    #: One correct warning 100 s before each failure...
    CORRECT = (900.0, 1900.0, 2900.0, 3900.0)
    #: ...and false alarms past the last failure's lead window.
    FALSE = (4600.0, 4700.0, 4800.0, 4900.0)

    def _history(self):
        return AlertHistory(
            [make_alert(t, category="FAIL") for t in self.FAILURES]
        )

    def _fit(self, factories):
        ensemble = PredictorEnsemble(
            factories=factories, min_f1=0.2, min_precision=0.6,
            min_failures=4, lead_min=10.0, lead_max=500.0,
        )
        return ensemble.fit(self._history(), (0.0, 500.0), (500.0, 5000.0))

    def test_cries_wolf_candidate_never_selected(self):
        """The wolf has recall 1.0 and the best F1 (0.67 vs 0.4) *and*
        sorts first — only the precision guard can exclude it.  A
        candidate that never warned is judged on F1 alone, not treated
        as crying wolf."""
        ensemble = self._fit({
            "awolf": scripted(self.CORRECT + self.FALSE),   # P=0.5 R=1.0
            "mute": scripted(()),                           # never warns
            "zhonest": scripted(self.CORRECT[:1]),          # P=1.0 R=0.25
        })
        member = ensemble.members["FAIL"]
        assert member.kind == "zhonest"
        assert member.validation.precision == 1.0

    def test_cries_wolf_alone_means_no_member(self):
        """With only the wolf on offer the category gets *no* predictor:
        'a predictor that cries wolf is worse than none'."""
        ensemble = self._fit({"awolf": scripted(self.CORRECT + self.FALSE)})
        assert ensemble.members == {}

    def test_equal_scores_select_first_kind_deterministically(self):
        """Two candidates with identical validation scores: the
        alphabetically first kind wins, independent of the factory
        dict's insertion order."""
        times = self.CORRECT[:2]
        for factories in (
            {"beta": scripted(times), "alpha": scripted(times)},
            {"alpha": scripted(times), "beta": scripted(times)},
        ):
            ensemble = self._fit(factories)
            assert ensemble.members["FAIL"].kind == "alpha"

    def test_online_refit_forwards_selection_thresholds(self, monkeypatch):
        """The streaming ensemble delegates selection to this offline
        ensemble — its config must reach the constructor, or the online
        path silently loses the cries-wolf guard."""
        from repro.streaming import PredictionConfig
        from repro.streaming import online as online_mod

        captured = {}
        real = online_mod.PredictorEnsemble

        def spy(**kwargs):
            captured.update(kwargs)
            return real(**kwargs)

        monkeypatch.setattr(online_mod, "PredictorEnsemble", spy)
        config = PredictionConfig(
            min_precision=0.9, min_f1=0.5, first_refit=8,
        )
        ensemble = online_mod.OnlineEnsemble(config)
        ensemble.advance(
            [(float(i) * 100.0, "CAT", "n0", None) for i in range(1, 40)]
        )
        assert ensemble.refits >= 1
        assert captured["min_precision"] == 0.9
        assert captured["min_f1"] == 0.5
        assert captured["min_failures"] == config.min_failures
        assert captured["lead_min"] == config.lead_min
        assert captured["lead_max"] == config.lead_max

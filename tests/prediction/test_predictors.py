"""Unit tests for the concrete predictors."""

import numpy as np

from repro.prediction.base import evaluate
from repro.prediction.features import AlertHistory
from repro.prediction.predictors import (
    BurstPredictor,
    PrecursorPredictor,
    SeverityPredictor,
)
from repro.core.categories import Alert, AlertType
from repro.logmodel.record import LogRecord

from ..conftest import make_alert


def _severity_alert(t, severity, category="X"):
    record = LogRecord(
        timestamp=t, source="n1", facility="kernel", body="x",
        severity=severity,
    )
    return Alert(
        timestamp=t, source="n1", category=category,
        alert_type=AlertType.SOFTWARE, record=record,
    )


def _bursty_history():
    """Quiet background + one dense burst preceding each 'failure'."""
    rng = np.random.default_rng(9)
    alerts = []
    # background: one alert every ~2000 s
    for t in np.cumsum(rng.exponential(2000.0, 200)):
        alerts.append(make_alert(float(t), category="NOISE"))
    # three bursts of 30 precursor alerts, each followed by a failure
    failures = []
    for base in (1e5, 2e5, 3e5):
        for k in range(30):
            alerts.append(make_alert(base + k * 5.0, category="PRE"))
        failures.append(base + 600.0)
        alerts.append(make_alert(base + 600.0, category="TARGET"))
    return AlertHistory(alerts), failures


class TestBurstPredictor:
    def test_fires_on_bursts_only(self):
        history, failures = _bursty_history()
        predictor = BurstPredictor("TARGET", window=300.0, sigma=5.0)
        predictor.train(history, 0.0, 5e4)  # quiet span
        warnings = predictor.warnings(history, 5e4, 4e5)
        assert warnings, "bursts must trigger the predictor"
        score = evaluate(warnings, failures, "TARGET",
                         lead_min=10, lead_max=1200)
        assert score.recall == 1.0

    def test_silent_on_quiet_stream(self):
        rng = np.random.default_rng(10)
        alerts = [
            make_alert(float(t))
            for t in np.cumsum(rng.exponential(3000.0, 100))
        ]
        history = AlertHistory(alerts)
        predictor = BurstPredictor("X", window=300.0, sigma=6.0)
        predictor.train(history, 0.0, 1e5)
        assert predictor.warnings(history, 1e5, 3e5) == []

    def test_refractory_dedupe(self):
        history, _ = _bursty_history()
        predictor = BurstPredictor(
            "TARGET", window=300.0, sigma=5.0, refractory=1e9,
        )
        predictor.train(history, 0.0, 5e4)
        assert len(predictor.warnings(history, 5e4, 4e5)) == 1


class TestSeverityPredictor:
    def test_warns_on_high_severity(self):
        alerts = [
            _severity_alert(100.0, "FATAL"),
            _severity_alert(5000.0, "INFO"),
        ]
        history = AlertHistory(alerts)
        predictor = SeverityPredictor("X")
        warnings = predictor.warnings(history, 0.0, 1e4)
        assert [w.t for w in warnings] == [100.0]

    def test_blind_without_severity_field(self):
        """On Thunderbird/Spirit/Liberty the field does not exist: the
        baseline cannot warn at all."""
        history = AlertHistory([make_alert(100.0)])
        predictor = SeverityPredictor("X")
        assert predictor.warnings(history, 0.0, 1e4) == []


class TestPrecursorPredictor:
    def test_learns_planted_precursor(self):
        history, failures = _bursty_history()
        predictor = PrecursorPredictor("TARGET", lead=1200.0)
        predictor.train(history, 0.0, 4e5)
        assert "PRE" in predictor.precursors
        assert "NOISE" not in predictor.precursors

    def test_warns_on_precursors(self):
        history, failures = _bursty_history()
        predictor = PrecursorPredictor("TARGET", lead=1200.0, refractory=100.0)
        predictor.train(history, 0.0, 4e5)
        warnings = predictor.warnings(history, 0.0, 4e5)
        score = evaluate(warnings, failures, "TARGET",
                         lead_min=10, lead_max=1200)
        assert score.recall == 1.0
        assert score.precision > 0.5

    def test_silent_without_signature(self):
        """'Some failures leave no sign': no precursors learned means no
        warnings, not noise."""
        rng = np.random.default_rng(11)
        alerts = [
            make_alert(float(t), category="TARGET")
            for t in np.cumsum(rng.exponential(5e4, 20))
        ]
        history = AlertHistory(alerts)
        predictor = PrecursorPredictor("TARGET")
        predictor.train(history, 0.0, 1e6)
        assert predictor.precursors == {}
        assert predictor.warnings(history, 0.0, 1e6) == []

"""Differential equivalence: streaming miner vs. offline correlation.

The streaming miner's license to exist is an exactness contract (see the
``repro.streaming.miner`` module docstring): fed the same alert stream —
in *any* batching — it must reproduce the offline analyses of
``repro.analysis.correlation`` on the materialized list.  These
property-based tests generate adversarial streams over each of the five
systems' real rulesets (bursts, exact-tie lags, duplicate timestamps,
window-straddling gaps) and assert:

* ``miner.tag_correlation`` equals offline ``tag_correlation`` for every
  category pair present: counts, coincidences, and coincidence rate
  integer-exact; ``mean_lag`` within the lag-grid quantum (< 1e-6 s);
* ``miner.spatial`` equals offline ``spatial_correlation`` exactly
  (burst statistics are ratios of integers on both sides);
* two different batch partitions of one stream — including the
  all-size-1 partition — produce identical graph snapshots;
* the engine-facing :class:`~repro.streaming.stage.PredictionStage`
  emits the same warnings and graph when alerts arrive out of order
  within the reorder tolerance, across any observe/observe_batch mix.
"""

from __future__ import annotations

import math
from typing import NamedTuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.correlation import spatial_correlation, tag_correlation
from repro.core.tagging import RulesetHandle
from repro.streaming import PredictionConfig, PredictionStage
from repro.streaming.miner import StreamingCorrelationMiner
from repro.streaming.online import SlimAlert

SYSTEMS = ("bgl", "liberty", "redstorm", "spirit", "thunderbird")

#: Real category alphabets, capped so pair mining stays dense enough to
#: actually produce coincidences within small generated streams.
CATEGORIES = {
    system: [c.name for c in RulesetHandle(system).resolve()][:8]
    for system in SYSTEMS
}

SOURCES = ["n0", "n1", "n2", "n17"]

#: mean_lag tolerance: each lag is quantized to the 2**-20 s grid
#: (error <= 2**-21 per addend), so the means agree strictly below
#: 1e-6 s; integers and their ratios must match exactly.
LAG_TOL = 1e-6


class FakeAlert(NamedTuple):
    """The offline analyses read only these three attributes."""

    timestamp: float
    category: str
    source: str


@st.composite
def event_streams(draw, system, max_size=120, min_gap=0.0):
    """Time-ordered (t, category, source) streams for one system.

    Gaps straddle both miner windows (spatial 60 s via the raw draw,
    pair 300 s via the occasional 12x stretch) and include zero-gap
    duplicates plus fractional offsets that land off the lag grid.
    """
    n = draw(st.integers(min_value=0, max_value=max_size))
    gaps = draw(st.lists(
        st.floats(min_value=min_gap, max_value=70.0, allow_nan=False),
        min_size=n, max_size=n,
    ))
    stretch = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    cats = draw(st.lists(
        st.sampled_from(CATEGORIES[system]), min_size=n, max_size=n,
    ))
    srcs = draw(st.lists(st.sampled_from(SOURCES), min_size=n, max_size=n))
    t = 1_000_000.0
    events = []
    for gap, far, cat, src in zip(gaps, stretch, cats, srcs):
        t += gap * 12.0 if far else gap
        events.append((t, cat, src))
    return events


@st.composite
def partitions(draw, n):
    """Split ``range(n)`` into contiguous batches (sizes >= 1)."""
    if n == 0:
        return []
    cuts = sorted(draw(st.sets(st.integers(min_value=1, max_value=n - 1))) if n > 1 else [])
    bounds = [0] + list(cuts) + [n]
    return list(zip(bounds[:-1], bounds[1:]))


def feed(events, batches, **miner_kwargs):
    miner = StreamingCorrelationMiner(**miner_kwargs)
    for lo, hi in batches:
        miner.extend(events[lo:hi])
        # Advance with the watermark a live run would have: the newest
        # ingested time.  Finalization lag never changes the flushed view.
        miner.advance(events[hi - 1][0])
    return miner


def graph_key(miner):
    graph = miner.graph(max_edges=10_000, max_source_edges=10_000)
    return (graph.edges, graph.source_edges, graph.spatial,
            graph.finalized_alerts)


class TestMinerVsOffline:
    """The streaming miner against the offline analyses, per system."""

    @pytest.mark.parametrize("system", SYSTEMS)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_tag_correlation_matches_offline(self, system, data):
        events = data.draw(event_streams(system), label="events")
        batches = data.draw(partitions(len(events)), label="batches")
        miner = feed(events, batches)
        alerts = [FakeAlert(*e) for e in events]
        present = sorted({e[1] for e in events})
        for i, cat_a in enumerate(present):
            for cat_b in present[i + 1:]:
                offline = tag_correlation(alerts, cat_a, cat_b, window=300.0)
                online = miner.tag_correlation(cat_a, cat_b)
                assert online is not None
                assert online.count_a == offline.count_a
                assert online.count_b == offline.count_b
                assert online.coincidences == offline.coincidences
                assert online.coincidence_rate == offline.coincidence_rate
                assert abs(online.mean_lag - offline.mean_lag) < LAG_TOL

    @pytest.mark.parametrize("system", SYSTEMS)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_spatial_matches_offline(self, system, data):
        events = data.draw(event_streams(system), label="events")
        batches = data.draw(partitions(len(events)), label="batches")
        miner = feed(events, batches)
        alerts = [FakeAlert(*e) for e in events]
        offline = spatial_correlation(alerts, window=60.0)
        online = miner.spatial()
        assert set(online) == set(offline)
        for category, expect in offline.items():
            got = online[category]
            # Both sides are ratios of the same integers: exact equality.
            assert got.incidents == expect.incidents
            assert got.mean_distinct_sources == expect.mean_distinct_sources
            assert got.multi_source_fraction == expect.multi_source_fraction

    @pytest.mark.parametrize("system", SYSTEMS)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_batching_never_changes_the_graph(self, system, data):
        """Any two partitions — including all-size-1 — agree snapshot-
        for-snapshot: rounded weights, edge order, spatial rows, counts."""
        events = data.draw(event_streams(system, max_size=80), label="events")
        part_a = data.draw(partitions(len(events)), label="partition_a")
        part_b = data.draw(partitions(len(events)), label="partition_b")
        singles = [(i, i + 1) for i in range(len(events))]
        reference = graph_key(feed(events, part_a))
        assert graph_key(feed(events, part_b)) == reference
        assert graph_key(feed(events, singles)) == reference

    @pytest.mark.parametrize("system", SYSTEMS)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_tiny_caps_stay_bounded_and_batch_invariant(self, system, data):
        """With caps far below the stream's edge count, pruning kicks in
        at fixed stream-time boundaries — table sizes stay bounded and
        the surviving graph is still partition-independent."""
        events = data.draw(event_streams(system, max_size=100), label="events")
        part_a = data.draw(partitions(len(events)), label="partition_a")
        part_b = data.draw(partitions(len(events)), label="partition_b")
        kwargs = dict(max_edges=4, max_source_edges=6, prune_interval=120.0)
        miner_a = feed(events, part_a, **kwargs)
        miner_b = feed(events, part_b, **kwargs)
        assert graph_key(miner_a) == graph_key(miner_b)
        assert miner_a.pruned_edges == miner_b.pruned_edges
        assert miner_a.pruned_source_edges == miner_b.pruned_source_edges


class TestMinerMechanics:
    """Direct unit coverage of ordering, flushing, and durability."""

    def test_out_of_order_extend_rejected(self):
        miner = StreamingCorrelationMiner()
        miner.extend([(10.0, "A", "n0")])
        with pytest.raises(ValueError, match="time-ordered"):
            miner.extend([(9.0, "A", "n0")])
        with pytest.raises(ValueError, match="time-ordered"):
            miner.extend([(11.0, "A", "n0"), (10.5, "B", "n1")])

    def test_flushed_view_leaves_live_miner_untouched(self):
        miner = StreamingCorrelationMiner()
        miner.extend([(0.0, "A", "n0"), (1.0, "B", "n1")])
        snap = miner.flushed()
        assert snap.finalized == 2
        assert miner.finalized == 0  # still pending on the live miner
        miner.extend([(2.0, "A", "n2")])  # stream continues
        assert miner.flushed().finalized == 3

    def test_state_roundtrip_mid_stream(self):
        events = [(float(i) * 7.0, "AB"[i % 2], SOURCES[i % 3])
                  for i in range(200)]
        original = StreamingCorrelationMiner(prune_interval=100.0)
        original.extend(events[:120])
        original.advance(events[119][0])

        restored = StreamingCorrelationMiner(prune_interval=100.0)
        restored.load_state_dict(original.state_dict())
        for miner in (original, restored):
            miner.extend(events[120:])
            miner.advance(math.inf)
        assert graph_key(original) == graph_key(restored)
        assert original.tag_correlation("A", "B") == restored.tag_correlation("A", "B")

    def test_state_rejects_mismatched_params(self):
        state = StreamingCorrelationMiner(pair_window=300.0).state_dict()
        other = StreamingCorrelationMiner(pair_window=60.0)
        with pytest.raises(ValueError, match="configuration mismatch"):
            other.load_state_dict(state)


def run_stage(arrivals, chunking, config):
    """Feed ``arrivals`` through a PredictionStage in the given chunking
    (sizes; 1 -> observe, >1 -> observe_batch) and return its report."""
    stage = PredictionStage(config=config, reorder_tolerance=1.0)
    i = 0
    for size in chunking:
        chunk = arrivals[i:i + size]
        if not chunk:
            break
        if size == 1:
            stage.observe(chunk[0], True)
        else:
            stage.observe_batch((a, True) for a in chunk)
        i += size
    for alert in arrivals[i:]:
        stage.observe(alert, True)
    stage.finish()
    return stage.report()


class TestStageReordering:
    """Out-of-order arrival within the tolerance is invisible."""

    @pytest.mark.parametrize("system", SYSTEMS)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_within_tolerance_shuffle_is_invisible(self, system, data):
        """Arrival order sorted by the jittered key ``t + u``, with
        ``u`` drawn from [0, tolerance), satisfies the filter contract
        (every arrival has ``t > max_seen - tolerance``) yet freely
        swaps neighbours closer than the tolerance.  The finalized
        stream — hence warnings and graph — must not notice, for any
        observe/observe_batch chunking on either side."""
        events = data.draw(
            event_streams(system, max_size=90, min_gap=0.001), label="events",
        )
        alerts = [SlimAlert(t, cat, src, None) for t, cat, src in events]
        jitter = data.draw(st.lists(
            st.floats(min_value=0.0, max_value=0.999, allow_nan=False),
            min_size=len(alerts), max_size=len(alerts),
        ), label="jitter")
        shuffled = [a for _, a in sorted(
            zip((a.timestamp + u for a, u in zip(alerts, jitter)),
                alerts), key=lambda pair: pair[0],
        )]
        chunk_in = data.draw(st.lists(st.integers(1, 16), max_size=20),
                             label="chunk_in")
        chunk_shuf = data.draw(st.lists(st.integers(1, 16), max_size=20),
                               label="chunk_shuf")
        # first_refit low enough that generated streams cross at least
        # one refit boundary, so the ensemble path is exercised too.
        config = PredictionConfig(first_refit=32)
        baseline = run_stage(alerts, chunk_in, config)
        shuffled_report = run_stage(shuffled, chunk_shuf, config)
        assert shuffled_report.warnings == baseline.warnings
        assert shuffled_report.refits == baseline.refits
        assert shuffled_report.observed == baseline.observed
        assert (shuffled_report.graph.edges, shuffled_report.graph.spatial,
                shuffled_report.graph.finalized_alerts) == (
            baseline.graph.edges, baseline.graph.spatial,
            baseline.graph.finalized_alerts)

"""Crash/resume durability of the prediction stage.

Prediction state — the correlation miner, the online ensemble (members,
refractory clocks, refit schedule), and the stage's pending reorder
buffer — rides ``PipelineCheckpoint.prediction_state`` through the
durable checkpoint wire.  These tests prove the round trip is *exact*:
a run killed mid-stream (an in-process collector crash, or a real
SIGKILL of a worker process) and resumed from ``state_dir`` alone must
reproduce the uninterrupted run's warning stream, ensemble membership,
and correlation graph field-for-field, and a run whose checkpoint
storage is broken (``FaultyFilesystem``) must degrade without
perturbing any prediction output.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro import api
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.durability import CheckpointStore, recover_checkpoint
from repro.resilience.faults import (
    CollectorCrash,
    FaultConfig,
    FaultPlan,
    FaultyFilesystem,
)
from repro.simulation.generator import generate_log

REPO = Path(__file__).resolve().parent.parent.parent

#: The smallest calibrated scenario that still installs ensemble
#: members, emits dozens of warnings, and mines a multi-edge graph
#: (mirrors the golden ``redstorm-ddn-disk`` fixture).
SYSTEM = "redstorm"
SCALE = 1e-4
SEED = 11
TOKEN = f"prediction-crash|{SYSTEM}|{SCALE!r}|{SEED}"
CHECKPOINT_EVERY = 2000
KILL_AT = 12_000  # mid-stream, past several checkpoints and refits


def records():
    return generate_log(SYSTEM, scale=SCALE, seed=SEED).records


def run(state_dir=None, wrap=None, checkpointer=None):
    stream = records()
    return api.run_stream(
        wrap(stream) if wrap else stream,
        SYSTEM,
        checkpointer=(
            checkpointer or CheckpointManager(every=CHECKPOINT_EVERY)
        ),
        state_dir=state_dir,
        state_token=TOKEN,
        predict=True,
    )


def assert_prediction_identical(resumed, baseline):
    got, expect = resumed.prediction, baseline.prediction
    assert got is not None and expect is not None
    assert expect.warnings_emitted > 0      # the scenario must warn...
    assert len(expect.members) > 0          # ...and install members,
    assert len(expect.graph.edges) > 1      # ...or this pins nothing
    assert got.warnings == expect.warnings
    assert got.warnings_emitted == expect.warnings_emitted
    assert got.members == expect.members
    assert got.refits == expect.refits
    assert got.observed == expect.observed
    assert got.graph == expect.graph        # edges, sources, spatial, count


@pytest.fixture(scope="module")
def baseline():
    """One uninterrupted run with prediction, shared by every variant."""
    return run()


class TestPredictionCrashResume:
    def test_collector_crash_resume_is_exact(self, tmp_path, baseline):
        """An exception-crashed run resumed from disk alone replays to
        the identical prediction report — warnings, members, graph."""
        plan = FaultPlan(FaultConfig.crash_only(at=KILL_AT, seed=SEED))
        state_dir = str(tmp_path / "state")
        with pytest.raises(CollectorCrash):
            run(state_dir, wrap=plan.wrap)
        persisted = recover_checkpoint(state_dir, TOKEN)
        assert persisted is not None
        assert persisted.prediction_state is not None
        assert persisted.records_consumed <= KILL_AT

        resumed = run(state_dir, wrap=plan.wrap)
        assert_prediction_identical(resumed, baseline)
        # Clean finish consumed the durable state.
        assert recover_checkpoint(state_dir, TOKEN) is None

    def test_sigkill_resume_is_exact(self, tmp_path, baseline):
        """The real thing: a worker process SIGKILLed mid-stream (no
        exception handlers, no atexit — the process just dies), then the
        same invocation resumed in this process from ``state_dir``."""
        state_dir = str(tmp_path / "state")
        child = subprocess.run(
            [sys.executable, "-c", _CHILD, state_dir],
            cwd=str(REPO),
            env={**os.environ, "PYTHONPATH": str(REPO / "src")},
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert child.returncode == -int(signal.SIGKILL), child.stderr
        persisted = recover_checkpoint(state_dir, TOKEN)
        assert persisted is not None
        assert persisted.prediction_state is not None

        resumed = run(state_dir)
        assert_prediction_identical(resumed, baseline)

    def test_degraded_storage_never_perturbs_prediction(
        self, tmp_path, baseline
    ):
        """Checkpoint storage failing from the first write must leave
        the prediction output untouched — durability degrades, the
        stream's semantics never do."""
        store = CheckpointStore(
            str(tmp_path / "doomed"), token=TOKEN,
            fs=FaultyFilesystem(fail_after=0),
        )
        manager = CheckpointManager(every=CHECKPOINT_EVERY, store=store)
        degraded = run(checkpointer=manager)
        assert_prediction_identical(degraded, baseline)
        assert store.status.degraded
        assert store.saved == 0


#: Child body for the SIGKILL variant: identical stream and arguments
#: to :func:`run`, except the source generator kills the process —
#: SIGKILL, uncatchable — after KILL_AT records.
_CHILD = f"""
import os, signal, sys

from repro import api
from repro.resilience.checkpoint import CheckpointManager
from repro.simulation.generator import generate_log


def doomed(stream):
    for i, record in enumerate(stream):
        if i >= {KILL_AT}:
            os.kill(os.getpid(), signal.SIGKILL)
        yield record


api.run_stream(
    doomed(generate_log({SYSTEM!r}, scale={SCALE!r}, seed={SEED}).records),
    {SYSTEM!r},
    checkpointer=CheckpointManager(every={CHECKPOINT_EVERY}),
    state_dir=sys.argv[1],
    state_token={TOKEN!r},
    predict=True,
)
raise SystemExit("unreachable: the stream should have killed us")
"""

"""Unit tests for the Dispersion Frame Technique."""

import numpy as np

from repro.prediction.dft import DftPredictor, dft_scan, _rules_fire
from repro.prediction.features import AlertHistory

from ..conftest import make_alert

HOUR = 3600.0
DAY = 86400.0


class TestRules:
    def test_too_little_history(self):
        assert _rules_fire([]) is None
        assert _rules_fire([100.0]) is None

    def test_2_in_1_on_sharp_acceleration(self):
        # Frames: 10000 then 1000: newest <= previous/2.
        assert _rules_fire([0.0, 10_000.0, 11_000.0]) == "2-in-1"

    def test_4_in_1_on_day_cluster(self):
        times = [0.0, 9 * HOUR, 14 * HOUR, 20 * HOUR]
        assert _rules_fire(times) in ("4-in-1", "2-in-1", "2-of-4")

    def test_quiet_device_never_fires(self):
        # Steady errors days apart: no acceleration.
        times = [i * 3 * DAY for i in range(6)]
        assert _rules_fire(times) is None

    def test_decreasing_frames(self):
        # Frames 30 h, 17 h, 9.5 h: monotone and more than halved overall,
        # but no single step is a halving (no 2-in-1) and the span exceeds
        # a day (no 4-in-1) -> the 4-decreasing rule fires.
        times = [0.0, 30 * HOUR, 47 * HOUR, 56.5 * HOUR]
        assert _rules_fire(times) == "4-decreasing"


class TestScan:
    def test_accelerating_device_flagged(self):
        events = [(float(t), "dimm2") for t in
                  [0, 50 * HOUR, 80 * HOUR, 90 * HOUR, 93 * HOUR]]
        firings = dft_scan(events)
        assert firings
        assert firings[0].source == "dimm2"

    def test_refractory_limits_advisories(self):
        events = [(float(k) * 100.0, "n1") for k in range(50)]
        firings = dft_scan(events, refractory=1e9)
        assert len(firings) <= 1

    def test_devices_tracked_independently(self):
        burst = [(float(t), "bad") for t in
                 [0, 50 * HOUR, 80 * HOUR, 90 * HOUR, 93 * HOUR]]
        steady = [(float(i) * 5 * DAY, "good") for i in range(6)]
        firings = dft_scan(sorted(burst + steady))
        assert {f.source for f in firings} == {"bad"}

    def test_empty(self):
        assert dft_scan([]) == []


class TestPredictor:
    def test_warns_before_planted_failure(self):
        # A DIMM whose correctable errors accelerate into a failure.
        error_times = [0.0, 40 * HOUR, 65 * HOUR, 75 * HOUR, 79 * HOUR]
        alerts = [
            make_alert(t, source="dimm7", category="ECC")
            for t in error_times
        ]
        history = AlertHistory(alerts)
        predictor = DftPredictor("ECC")
        predictor.train(history, 0.0, 80 * HOUR)
        warnings = predictor.warnings(history, 0.0, 80 * HOUR)
        assert warnings
        assert warnings[0].t <= error_times[-1]

    def test_other_categories_ignored(self):
        alerts = [
            make_alert(float(t), source="n1", category="OTHER")
            for t in range(5)
        ]
        history = AlertHistory(alerts)
        predictor = DftPredictor("ECC")
        assert predictor.warnings(history, 0.0, 10.0) == []

    def test_pluggable_into_ensemble(self):
        from repro.prediction.ensemble import PredictorEnsemble
        from repro.prediction.dft import DftPredictor

        rng = np.random.default_rng(4)
        alerts = []
        t = 0.0
        # Repeating degradation pattern on one device per epoch.
        for epoch in range(12):
            base = epoch * 30 * DAY
            for offset in (0.0, 40 * HOUR, 65 * HOUR, 75 * HOUR, 79 * HOUR):
                alerts.append(
                    make_alert(base + offset, source=f"dimm{epoch}",
                               category="ECC")
                )
        history = AlertHistory(alerts)
        ensemble = PredictorEnsemble(
            factories={"dft": lambda target: DftPredictor(target)},
            min_f1=0.05,
            lead_max=12 * HOUR,
        )
        t0, t1 = history.first_time(), history.last_time() + 1
        cut1 = t0 + (t1 - t0) * 0.5
        cut2 = t0 + (t1 - t0) * 0.75
        ensemble.fit(history, (t0, cut1), (cut1, cut2))
        # DFT is the only candidate; whether it clears the bar depends on
        # the lead window, but fitting must not error and members are DFT.
        for member in ensemble.members.values():
            assert member.kind == "dft"

"""Golden prediction corpus: frozen warning streams per scenario.

Each fixture under ``tests/fixtures/golden/prediction/`` records the
exact output of the streaming prediction stage — every lead-time-stamped
warning, the installed ensemble members, and the full correlation-graph
snapshot — for one calibrated failure scenario's deterministic stream.
The scenarios replay here under the serial and the sharded driver and
must reproduce the fixtures *byte-identically* (floats round-trip JSON
exactly): the finalized alert sequence the stage consumes is a pure
function of the alert stream, never of the driver's schedule, so any
drift is a real behavioral change.  Regenerate — only when the change is
intended — with ``PYTHONPATH=src python scripts/make_golden.py``.
"""

import json
from pathlib import Path

import pytest

from repro import api
from repro.parallel import ParallelConfig
from repro.simulation.generator import LogGenerator
from repro.streaming import PredictionConfig

PREDICTION_DIR = (
    Path(__file__).resolve().parent.parent / "fixtures" / "golden"
    / "prediction"
)
SCENARIOS = sorted(p.stem.replace(".expected", "")
                   for p in PREDICTION_DIR.glob("*.expected.json"))


def load_expected(name):
    path = PREDICTION_DIR / f"{name}.expected.json"
    return json.loads(path.read_text(encoding="utf-8"))


def run_scenario(expected, parallel=None):
    generated = LogGenerator(
        expected["system"], scale=expected["scale"], seed=expected["seed"]
    ).generate()
    return api.run_stream(
        generated.records, expected["system"], generated=generated,
        predict=PredictionConfig(**expected["config"]), parallel=parallel,
    )


# Row builders mirror scripts/make_golden.py exactly; no rounding on
# either side, so equality here is byte-level equivalence.

def warning_rows(report):
    return [
        [w.t, w.category, w.score, w.kind, w.valid_from, w.valid_until]
        for w in report.warnings
    ]


def member_rows(report):
    return [
        [m.target, m.kind, m.precision, m.recall, m.f1]
        for m in report.members
    ]


def graph_rows(graph):
    return {
        "finalized_alerts": graph.finalized_alerts,
        "edges": [
            [e.category_a, e.category_b, e.count_a, e.count_b,
             e.coincidences, e.coincidence_rate, e.mean_lag, e.weight]
            for e in graph.edges
        ],
        "source_edges": [
            [e.category, e.source, e.count, e.weight]
            for e in graph.source_edges
        ],
        "spatial": [
            [s.category, s.incidents, s.mean_distinct_sources,
             s.multi_source_fraction]
            for s in graph.spatial
        ],
    }


def assert_matches_expected(expected, result):
    report = result.prediction
    assert report is not None
    assert report.observed == expected["observed_alerts"]
    assert report.warnings_emitted == expected["warnings_emitted"]
    assert report.refits == expected["refits"]
    assert member_rows(report) == expected["members"]
    assert warning_rows(report) == expected["warnings"]
    assert graph_rows(report.graph) == expected["graph"]


class TestGoldenPrediction:
    def test_corpus_is_complete(self):
        """All three calibrated scenarios have committed fixtures."""
        assert SCENARIOS == [
            "liberty-pbs-chk", "redstorm-ddn-disk", "thunderbird-vapi-storm"
        ]

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_corpus_exercises_the_stage(self, name):
        """A fixture with no warnings, no members, or a bare graph pins
        nothing: every scenario must exercise the full stage."""
        expected = load_expected(name)
        assert expected["warnings_emitted"] > 0
        assert len(expected["members"]) > 0
        assert len(expected["graph"]["edges"]) > 1
        assert expected["graph"]["finalized_alerts"] > 0

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_serial_matches_golden(self, name):
        expected = load_expected(name)
        assert_matches_expected(expected, run_scenario(expected))

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_sharded_matches_golden(self, name, env_workers):
        expected = load_expected(name)
        result = run_scenario(
            expected,
            parallel=ParallelConfig(workers=env_workers, batch_size=2048),
        )
        assert_matches_expected(expected, result)
        assert result.shard_stats is not None

"""Unit tests for prediction feature extraction."""

from repro.prediction.features import AlertHistory

from ..conftest import make_alert


def _history():
    alerts = [
        make_alert(0.0, category="A"),
        make_alert(10.0, category="B"),
        make_alert(20.0, category="A"),
        make_alert(30.0, category="A"),
    ]
    return AlertHistory(alerts)


class TestAlertHistory:
    def test_sorts_input(self):
        history = AlertHistory(
            [make_alert(5.0), make_alert(1.0), make_alert(3.0)]
        )
        times = [a.timestamp for a in history.alerts]
        assert times == [1.0, 3.0, 5.0]

    def test_categories(self):
        assert _history().categories == ["A", "B"]

    def test_count_between_half_open(self):
        history = _history()
        assert history.count_between(0.0, 20.0) == 2   # [0, 20)
        assert history.count_between(0.0, 20.1) == 3
        assert history.count_between(100.0, 200.0) == 0

    def test_category_count_between(self):
        history = _history()
        assert history.category_count_between("A", 0.0, 31.0) == 3
        assert history.category_count_between("B", 0.0, 31.0) == 1
        assert history.category_count_between("MISSING", 0.0, 31.0) == 0

    def test_category_times(self):
        assert _history().category_times("A") == [0.0, 20.0, 30.0]

    def test_first_last(self):
        history = _history()
        assert history.first_time() == 0.0
        assert history.last_time() == 30.0
        empty = AlertHistory([])
        assert empty.first_time() == 0.0
        assert empty.last_time() == 0.0


class TestWindowFeatures:
    def test_trailing_window(self):
        features = _history().features_at(31.0, window=15.0)
        # [16, 31): alerts at 20 and 30, both category A.
        assert features.total == 2
        assert features.by_category == {"A": 2}
        assert features.count("A") == 2
        assert features.count("B") == 0

    def test_rate(self):
        features = _history().features_at(31.0, window=15.0)
        assert features.rate() == 2 / 15.0

    def test_zero_count_categories_omitted(self):
        features = _history().features_at(31.0, window=15.0)
        assert "B" not in features.by_category

"""Unit tests for prediction evaluation arithmetic."""

import pytest

from repro.prediction.base import PredictionScore, Warning_, evaluate


def _warnings(times, category="X"):
    return [Warning_(t, category, 1.0) for t in times]


class TestEvaluate:
    def test_perfect_prediction(self):
        score = evaluate(
            _warnings([90.0]), [120.0], "X", lead_min=10, lead_max=60,
        )
        assert score.recall == 1.0
        assert score.precision == 1.0
        assert score.f1 == 1.0

    def test_warning_too_late_to_act(self):
        # 5 s of lead < lead_min: useless.
        score = evaluate(
            _warnings([115.0]), [120.0], "X", lead_min=10, lead_max=60,
        )
        assert score.predicted_failures == 0
        assert score.correct_warnings == 0

    def test_warning_too_early(self):
        score = evaluate(
            _warnings([10.0]), [120.0], "X", lead_min=10, lead_max=60,
        )
        assert score.predicted_failures == 0

    def test_false_alarm_hurts_precision_only(self):
        score = evaluate(
            _warnings([90.0, 500.0]), [120.0], "X", lead_min=10, lead_max=60,
        )
        assert score.recall == 1.0
        assert score.precision == 0.5

    def test_missed_failure_hurts_recall_only(self):
        score = evaluate(
            _warnings([90.0]), [120.0, 900.0], "X", lead_min=10, lead_max=60,
        )
        assert score.recall == 0.5
        assert score.precision == 1.0

    def test_foreign_category_warnings_ignored(self):
        score = evaluate(
            _warnings([90.0], category="OTHER"), [120.0], "X",
            lead_min=10, lead_max=60,
        )
        assert score.warnings == 0
        assert score.recall == 0.0

    def test_empty_inputs(self):
        score = evaluate([], [], "X")
        assert score.f1 == 0.0
        assert score.precision == 0.0
        assert score.recall == 0.0

    def test_invalid_lead_window(self):
        with pytest.raises(ValueError):
            evaluate([], [], "X", lead_min=60, lead_max=60)
        with pytest.raises(ValueError):
            evaluate([], [], "X", lead_min=-1, lead_max=60)

    def test_one_warning_can_cover_multiple_failures(self):
        score = evaluate(
            _warnings([100.0]), [120.0, 140.0], "X", lead_min=10, lead_max=60,
        )
        assert score.predicted_failures == 2
        assert score.correct_warnings == 1


class TestScoreProperties:
    def test_f1_harmonic_mean(self):
        score = PredictionScore(
            target="X", failures=4, predicted_failures=2,
            warnings=4, correct_warnings=4,
        )
        assert score.precision == 1.0
        assert score.recall == 0.5
        assert score.f1 == pytest.approx(2 / 3)

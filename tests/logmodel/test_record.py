"""Unit tests for the canonical log record model."""

import pytest

from repro.logmodel.record import (
    SYSTEM_NAMES,
    Channel,
    LogRecord,
    RasSeverity,
    SyslogSeverity,
)


class TestSyslogSeverity:
    def test_ordering_most_severe_first(self):
        assert SyslogSeverity.EMERG < SyslogSeverity.DEBUG
        assert SyslogSeverity.CRIT < SyslogSeverity.ERR

    def test_from_label_case_insensitive(self):
        assert SyslogSeverity.from_label("crit") is SyslogSeverity.CRIT
        assert SyslogSeverity.from_label(" WARNING ") is SyslogSeverity.WARNING

    def test_from_label_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown syslog severity"):
            SyslogSeverity.from_label("FATAL")

    def test_eight_levels(self):
        assert len(SyslogSeverity) == 8


class TestRasSeverity:
    def test_six_levels_match_table5(self):
        assert [s.name for s in RasSeverity] == [
            "FATAL", "FAILURE", "SEVERE", "ERROR", "WARNING", "INFO",
        ]

    def test_from_label(self):
        assert RasSeverity.from_label("fatal") is RasSeverity.FATAL

    def test_from_label_rejects_syslog_labels(self):
        with pytest.raises(ValueError):
            RasSeverity.from_label("CRIT")


class TestLogRecord:
    def _record(self, **overrides):
        defaults = dict(
            timestamp=100.0,
            source="sn373",
            facility="kernel",
            body="EXT3-fs error",
            system="spirit",
        )
        defaults.update(overrides)
        return LogRecord(**defaults)

    def test_full_text_includes_facility(self):
        assert self._record().full_text() == "kernel: EXT3-fs error"

    def test_full_text_without_facility(self):
        assert self._record(facility="").full_text() == "EXT3-fs error"

    def test_timestamp_must_be_numeric(self):
        with pytest.raises(TypeError, match="timestamp"):
            self._record(timestamp="noon")

    def test_syslog_severity_typed_view(self):
        record = self._record(severity="CRIT")
        assert record.syslog_severity() is SyslogSeverity.CRIT
        assert record.ras_severity() is None

    def test_ras_severity_typed_view(self):
        record = self._record(severity="FATAL", system="bgl")
        assert record.ras_severity() is RasSeverity.FATAL
        assert record.syslog_severity() is None

    def test_shared_labels_parse_in_both_spaces(self):
        # WARNING and INFO exist in both severity vocabularies.
        record = self._record(severity="WARNING")
        assert record.syslog_severity() is SyslogSeverity.WARNING
        assert record.ras_severity() is RasSeverity.WARNING

    def test_missing_severity_views_are_none(self):
        record = self._record()
        assert record.severity is None
        assert record.syslog_severity() is None
        assert record.ras_severity() is None

    def test_with_corruption_flags_and_replaces_body(self):
        damaged = self._record().with_corruption(body="EXT3-fs err")
        assert damaged.corrupted
        assert damaged.body == "EXT3-fs err"
        assert damaged.source == "sn373"

    def test_with_corruption_can_garble_source(self):
        damaged = self._record().with_corruption(body="x", source="\x00\x01")
        assert damaged.source == "\x00\x01"

    def test_records_are_frozen(self):
        with pytest.raises(AttributeError):
            self._record().timestamp = 5.0

    def test_equality_ignores_raw(self):
        a = self._record(raw="line-a")
        b = self._record(raw="line-b")
        assert a == b

    def test_default_channel(self):
        assert self._record().channel is Channel.SYSLOG_UDP


def test_system_names_order_matches_paper():
    assert SYSTEM_NAMES == (
        "bgl", "thunderbird", "redstorm", "spirit", "liberty",
    )

"""Unit tests for log pseudonymization."""

import re


from repro.logmodel.anonymize import Pseudonymizer
from repro.logmodel.record import LogRecord


def _record(body, source="tn231"):
    return LogRecord(
        timestamp=1.0, source=source, facility="kernel", body=body,
        system="thunderbird",
    )


class TestScrubText:
    def test_ip_addresses_replaced_consistently(self):
        scrubber = Pseudonymizer(key="k")
        a = scrubber.scrub_text("connect to 192.168.1.5 failed")
        b = scrubber.scrub_text("retry 192.168.1.5 now")
        token_a = a.split()[2]
        assert token_a != "192.168.1.5"
        assert token_a in b
        # Structure preserved: still a dotted quad.
        assert re.fullmatch(r"(?:\d{1,3}\.){3}\d{1,3}", token_a)

    def test_ip_with_port_keeps_port(self):
        scrubber = Pseudonymizer(key="k")
        out = scrubber.scrub_text("socket to 172.16.96.116:41752")
        assert ":41752" in out
        assert "172.16.96.116" not in out

    def test_usernames_in_context_replaced(self):
        scrubber = Pseudonymizer(key="k")
        out = scrubber.scrub_text("session opened for user jsmith by (uid=0)")
        assert "jsmith" not in out
        assert "user" in out

    def test_paths_replaced(self):
        scrubber = Pseudonymizer(key="k")
        out = scrubber.scrub_text("assertion failed. /usr/src/gm/mi.c:541")
        assert "/usr/src/gm/mi.c" not in out
        assert "/anon/" in out

    def test_job_ids_replaced(self):
        scrubber = Pseudonymizer(key="k")
        out = scrubber.scrub_text("cannot tm_reply to 31415.ladmin2 task 1")
        assert "31415.ladmin2" not in out
        assert re.search(r"\d+\.cluster", out)

    def test_different_keys_give_unlinkable_mappings(self):
        a = Pseudonymizer(key="alpha").scrub_text("host 10.1.2.3 down")
        b = Pseudonymizer(key="beta").scrub_text("host 10.1.2.3 down")
        assert a != b

    def test_same_key_is_deterministic(self):
        a = Pseudonymizer(key="k").scrub_text("host 10.1.2.3 down")
        b = Pseudonymizer(key="k").scrub_text("host 10.1.2.3 down")
        assert a == b

    def test_clean_text_unchanged(self):
        scrubber = Pseudonymizer(key="k")
        text = "data TLB error interrupt"
        assert scrubber.scrub_text(text) == text


class TestScrubRecord:
    def test_source_pseudonymized_consistently(self):
        scrubber = Pseudonymizer(key="k")
        a = scrubber.scrub_record(_record("x", source="sn373"))
        b = scrubber.scrub_record(_record("y", source="sn373"))
        c = scrubber.scrub_record(_record("z", source="sn374"))
        assert a.source == b.source != "sn373"
        assert c.source != a.source

    def test_empty_source_left_alone(self):
        scrubber = Pseudonymizer(key="k")
        assert scrubber.scrub_record(_record("x", source="")).source == ""

    def test_raw_line_dropped(self):
        """The pre-scrub raw line must not leak through the record."""
        scrubber = Pseudonymizer(key="k")
        record = LogRecord(
            timestamp=1.0, source="n1", facility="f",
            body="user at 10.0.0.1", raw="secret raw line",
        )
        assert scrubber.scrub_record(record).raw is None

    def test_stream(self):
        scrubber = Pseudonymizer(key="k")
        records = [_record("a"), _record("b")]
        assert len(list(scrubber.scrub_stream(records))) == 2


class TestResidualRisk:
    def test_email_flagged(self):
        scrubber = Pseudonymizer(key="k")
        scrubber.scrub_record(_record("mail from admin@example.com bounced"))
        assert any("admin@" in s for s in scrubber.residual_risk())

    def test_clean_log_reports_nothing(self):
        scrubber = Pseudonymizer(key="k")
        scrubber.scrub_record(_record("kernel panic"))
        assert scrubber.residual_risk() == []


class TestAnalysisPreservation:
    def test_spatial_structure_survives_anonymization(self):
        """Per-source counts are invariant under pseudonymization — the
        property that makes anonymized logs still analyzable."""
        from collections import Counter

        scrubber = Pseudonymizer(key="k")
        records = [
            _record("m", source=f"sn{i % 3}") for i in range(30)
        ]
        before = sorted(Counter(r.source for r in records).values())
        after = sorted(
            Counter(
                r.source for r in scrubber.scrub_stream(records)
            ).values()
        )
        assert before == after

    def test_rules_still_match_after_scrubbing(self):
        """Structure-preserving pseudonyms keep the expert rules working
        on anonymized logs."""
        from repro.core.rules import get_ruleset
        from repro.core.tagging import Tagger

        scrubber = Pseudonymizer(key="k")
        record = LogRecord(
            timestamp=1.0, source="ln3", facility="pbs_mom",
            body="task_check, cannot tm_reply to 31415.ladmin2 task 1",
            system="liberty",
        )
        scrubbed = scrubber.scrub_record(record)
        tagger = Tagger(get_ruleset("liberty"))
        assert tagger.match(scrubbed).name == "PBS_CHK"

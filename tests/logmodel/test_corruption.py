"""Unit tests for corruption detection and classification."""

from repro.logmodel.corruption import (
    CorruptionKind,
    best_template_match,
    classify_body,
    classify_record,
    common_prefix_length,
    looks_garbled,
)
from repro.logmodel.record import LogRecord

# The paper's canonical corruption example (Section 3.2.1).
VAPI_TEMPLATE = (
    "kernel: VIPKL(1): [create_mr] MM_bld_hh_mr failed (-253:VAPI_EAGAIN)"
)
VAPI_TRUNCATED = (
    "kernel: VIPKL(1): [create_mr] MM_bld_hh_mr failed (-253:VAPI_EAGAI"
)
VAPI_SPLICED = (
    "kernel: VIPKL(1): [create_mr] MM_bld_hh_mr failed (-253:VAPI_EAure = no"
)


class TestPrefixMatching:
    def test_common_prefix_length(self):
        assert common_prefix_length("abcdef", "abcxyz") == 3
        assert common_prefix_length("abc", "abc") == 3
        assert common_prefix_length("", "abc") == 0

    def test_best_template_match(self):
        template, length = best_template_match(
            VAPI_TRUNCATED, [VAPI_TEMPLATE, "unrelated message"]
        )
        assert template == VAPI_TEMPLATE
        assert length == len(VAPI_TRUNCATED)

    def test_no_match(self):
        template, length = best_template_match("zzz", ["abc"])
        assert template is None
        assert length == 0


class TestClassifyBody:
    def test_clean_exact(self):
        verdict = classify_body(VAPI_TEMPLATE, [VAPI_TEMPLATE])
        assert verdict.kind is CorruptionKind.NONE

    def test_truncation_detected(self):
        verdict = classify_body(VAPI_TRUNCATED, [VAPI_TEMPLATE])
        assert verdict.kind is CorruptionKind.TRUNCATED
        assert verdict.template == VAPI_TEMPLATE

    def test_splice_detected(self):
        verdict = classify_body(VAPI_SPLICED, [VAPI_TEMPLATE])
        assert verdict.kind is CorruptionKind.SPLICED

    def test_short_coincidental_prefix_ignored(self):
        verdict = classify_body("kernel: hello", [VAPI_TEMPLATE])
        assert verdict.kind is CorruptionKind.NONE

    def test_is_corrupted_property(self):
        assert classify_body(VAPI_TRUNCATED, [VAPI_TEMPLATE]).is_corrupted
        assert not classify_body(VAPI_TEMPLATE, [VAPI_TEMPLATE]).is_corrupted


class TestLooksGarbled:
    def test_hostnames_are_fine(self):
        assert not looks_garbled("tbird-admin1")
        assert not looks_garbled("R02-M1-N0-C:J12-U11")

    def test_control_bytes_are_garbage(self):
        assert looks_garbled("\x00\x13\x7fx")

    def test_empty_is_not_garbled(self):
        assert not looks_garbled("")


class TestClassifyRecord:
    def _record(self, **overrides):
        defaults = dict(
            timestamp=1131537662.0,
            source="tn231",
            facility="kernel",
            body="VIPKL(1): [create_mr] MM_bld_hh_mr failed (-253:VAPI_EAGAIN)",
            system="thunderbird",
        )
        defaults.update(overrides)
        return LogRecord(**defaults)

    def test_clean_record(self):
        verdict = classify_record(self._record(), templates=[VAPI_TEMPLATE])
        assert verdict.kind is CorruptionKind.NONE

    def test_garbled_source(self):
        verdict = classify_record(self._record(source="\x00\x01\x02"))
        assert verdict.kind is CorruptionKind.GARBLED_SOURCE

    def test_bad_timestamp(self):
        verdict = classify_record(self._record(timestamp=5e9))
        assert verdict.kind is CorruptionKind.BAD_TIMESTAMP

    def test_unparseable(self):
        record = LogRecord(
            timestamp=0.0, source="", facility="", body="x", corrupted=True,
        )
        verdict = classify_record(record)
        assert verdict.kind is CorruptionKind.UNPARSEABLE

    def test_truncated_body_against_templates(self):
        record = self._record(
            body="VIPKL(1): [create_mr] MM_bld_hh_mr failed (-253:VAPI_EAGAI",
            corrupted=True,
        )
        verdict = classify_record(record, templates=[VAPI_TEMPLATE])
        assert verdict.kind is CorruptionKind.TRUNCATED

"""Unit tests for the BG/L RAS event format."""

import pytest

from repro.logmodel.bgl import (
    FACILITIES,
    BglParseError,
    parse_bgl_line,
    parse_bgl_stream,
    render_bgl_line,
)
from repro.logmodel.record import Channel, LogRecord

GOOD_LINE = (
    "2005-06-03-15.42.50.363779 R02-M1-N0-C:J12-U11 RAS KERNEL FATAL "
    "data TLB error interrupt"
)


class TestParse:
    def test_fields(self):
        record = parse_bgl_line(GOOD_LINE)
        assert not record.corrupted
        assert record.source == "R02-M1-N0-C:J12-U11"
        assert record.facility == "KERNEL"
        assert record.severity == "FATAL"
        assert record.body == "data TLB error interrupt"
        assert record.system == "bgl"
        assert record.channel is Channel.JTAG_MAILBOX

    def test_microsecond_timestamps(self):
        record = parse_bgl_line(GOOD_LINE)
        assert record.timestamp == pytest.approx(1117813370.363779, abs=1e-6)

    def test_null_location_becomes_empty_source(self):
        line = (
            "2005-06-03-15.42.50.363779 NULL RAS BGLMASTER FAILURE "
            "ciodb exited normally with exit code 0"
        )
        record = parse_bgl_line(line)
        assert record.source == ""
        assert record.severity == "FAILURE"

    def test_unknown_severity_is_corruption(self):
        line = GOOD_LINE.replace("FATAL", "CRITICAL")
        assert parse_bgl_line(line).corrupted

    def test_garbage_tolerant(self):
        record = parse_bgl_line("VAPI_EAGAI")
        assert record.corrupted
        assert record.raw == "VAPI_EAGAI"

    def test_garbage_strict(self):
        with pytest.raises(BglParseError):
            parse_bgl_line("VAPI_EAGAI", strict=True)

    def test_bad_calendar_date_tolerant(self):
        line = GOOD_LINE.replace("2005-06-03", "2005-02-31")
        assert parse_bgl_line(line).corrupted


class TestRender:
    def test_round_trip(self):
        record = parse_bgl_line(GOOD_LINE)
        assert render_bgl_line(record) == GOOD_LINE

    def test_round_trip_preserves_microseconds(self):
        record = parse_bgl_line(GOOD_LINE)
        again = parse_bgl_line(render_bgl_line(record))
        assert again.timestamp == record.timestamp

    def test_empty_source_renders_null(self):
        record = LogRecord(
            timestamp=0.25,
            source="",
            facility="MMCS",
            body="x",
            system="bgl",
            severity="INFO",
            channel=Channel.JTAG_MAILBOX,
        )
        line = render_bgl_line(record)
        assert " NULL RAS MMCS INFO x" in line

    def test_corrupted_renders_raw(self):
        record = parse_bgl_line("junk")
        assert render_bgl_line(record) == "junk"

    def test_microsecond_rounding_never_overflows(self):
        record = LogRecord(
            timestamp=9.9999999,  # rounds to 10.000000, not 9.1000000
            source="R00-M0-N0",
            facility="KERNEL",
            body="x",
            system="bgl",
            severity="INFO",
            channel=Channel.JTAG_MAILBOX,
        )
        line = render_bgl_line(record)
        assert parse_bgl_line(line).timestamp == pytest.approx(10.0)


def test_stream_skips_blanks():
    records = list(parse_bgl_stream(["", GOOD_LINE, "  "]))
    assert len(records) == 1


def test_known_facilities_include_papers_examples():
    for facility in ("KERNEL", "APP", "BGLMASTER", "MMCS"):
        assert facility in FACILITIES

"""Unit and property tests for BSD syslog parsing/rendering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logmodel.record import LogRecord
from repro.logmodel.syslog import (
    SyslogParseError,
    parse_syslog_line,
    parse_syslog_stream,
    render_syslog_line,
)


class TestParse:
    def test_basic_line(self):
        record = parse_syslog_line(
            "Nov  9 12:01:02 sn373 kernel: EXT3-fs error (device sda5)",
            year=2005,
            system="spirit",
        )
        assert not record.corrupted
        assert record.source == "sn373"
        assert record.facility == "kernel"
        assert record.body == "EXT3-fs error (device sda5)"
        assert record.system == "spirit"
        # 2005-11-09 12:01:02 UTC
        assert record.timestamp == 1131537662.0

    def test_facility_with_pid(self):
        record = parse_syslog_line(
            "Jan  1 00:00:00 ln4 gm_mapper[736]: assertion failed.", 2005
        )
        assert record.facility == "gm_mapper"
        assert record.body == "assertion failed."

    def test_no_facility(self):
        record = parse_syslog_line("Jan  1 00:00:00 ln4 bare message", 2005)
        assert record.facility == ""
        assert record.body == "bare message"

    def test_two_digit_day_padding(self):
        one = parse_syslog_line("Jan  1 00:00:00 n m: x", 2005)
        ten = parse_syslog_line("Jan 10 00:00:00 n m: x", 2005)
        assert ten.timestamp - one.timestamp == 9 * 86400

    def test_malformed_line_tolerant(self):
        record = parse_syslog_line("complete garbage", 2005)
        assert record.corrupted
        assert record.body == "complete garbage"
        assert record.raw == "complete garbage"

    def test_malformed_line_strict_raises(self):
        with pytest.raises(SyslogParseError):
            parse_syslog_line("complete garbage", 2005, strict=True)

    def test_bad_month_tolerant(self):
        record = parse_syslog_line("Xxx  9 12:00:00 n kernel: hi", 2005)
        assert record.corrupted

    def test_bad_day_tolerant(self):
        record = parse_syslog_line("Feb 31 12:00:00 n kernel: hi", 2005)
        assert record.corrupted

    def test_strips_trailing_newline(self):
        record = parse_syslog_line("Jan  1 00:00:00 n m: x\n", 2005)
        assert not record.corrupted
        assert record.body == "x"


class TestRender:
    def test_round_trip(self):
        line = "Nov  9 12:01:02 tn231 pbs_mom: Connection refused (111)"
        record = parse_syslog_line(line, 2005)
        assert render_syslog_line(record) == line

    def test_corrupted_records_render_raw(self):
        record = parse_syslog_line("garbage line", 2005)
        assert render_syslog_line(record) == "garbage line"

    def test_render_without_facility(self):
        record = LogRecord(
            timestamp=0.0, source="n1", facility="", body="hello",
        )
        assert render_syslog_line(record) == "Jan  1 00:00:00 n1 hello"


class TestStream:
    def test_skips_blank_lines(self):
        lines = ["", "Jan  1 00:00:00 n m: x", "   ", "Jan  1 00:00:01 n m: y"]
        records = list(parse_syslog_stream(lines, 2005))
        assert [r.body for r in records] == ["x", "y"]

    def test_year_rollover(self):
        lines = [
            "Dec 31 23:59:59 n m: before",
            "Jan  1 00:00:01 n m: after",
        ]
        records = list(parse_syslog_stream(lines, 2004))
        assert records[1].timestamp > records[0].timestamp
        assert records[1].timestamp - records[0].timestamp == 2.0


@st.composite
def clean_records(draw):
    """Records whose fields survive the syslog format's constraints."""
    timestamp = draw(
        st.integers(min_value=1104537600, max_value=1135900800)  # 2005
    )
    source = draw(st.from_regex(r"[a-z][a-z0-9\-]{0,14}", fullmatch=True))
    facility = draw(st.from_regex(r"[a-z][a-z0-9_./\-]{0,10}", fullmatch=True))
    body = draw(st.from_regex(r"[ -~]{1,60}", fullmatch=True))
    return LogRecord(
        timestamp=float(timestamp),
        source=source,
        facility=facility,
        body=body,
        system="test",
    )


@given(clean_records())
@settings(max_examples=200)
def test_property_render_parse_preserves_semantics(record):
    """render o parse keeps timestamp, source, and full text for any clean
    record (the body/facility split can legitimately move when the body
    itself contains ': ', but the matched-against text must not change)."""
    line = render_syslog_line(record)
    parsed = parse_syslog_line(line, 2005)
    assert not parsed.corrupted
    assert parsed.timestamp == record.timestamp
    assert parsed.source == record.source
    assert parsed.full_text() == record.full_text()


@given(st.text(alphabet=st.characters(blacklist_characters="\n"), max_size=80))
@settings(max_examples=200)
def test_property_parser_never_raises_in_tolerant_mode(line):
    record = parse_syslog_line(line, 2005)
    assert isinstance(record, LogRecord)

"""Unit tests for the Red Storm log formats (syslog + DDN + RAS TCP)."""

import pytest

from repro.logmodel.record import Channel
from repro.logmodel.redstorm import (
    RedStormParseError,
    parse_redstorm_line,
    parse_redstorm_ras_line,
    parse_redstorm_stream,
    parse_redstorm_syslog_line,
    render_redstorm_line,
)

SYSLOG_LINE = (
    "Mar 19 08:00:05 c2-0c0s4n1 ERR kernel: LustreError: 6309:0:"
    "(events.c:55:request_out_callback()) @@@ timeout (sent at 1142717221, "
    "300s ago)"
)
DDN_LINE = (
    "Mar 20 09:10:11 ddn3 CRIT DMT_HINT Warning: Verify Host 2 bus parity "
    "error: 0200 Tier:5 LUN:4"
)
RAS_LINE = (
    "2006-03-21 10:11:12 ec_heartbeat_stop src:::c0-0c1s2n3 "
    "svc:::c0-0c1s2n3 warn node heartbeat_fault"
)


class TestSyslogPath:
    def test_severity_recorded(self):
        record = parse_redstorm_syslog_line(SYSLOG_LINE, 2006)
        assert record.severity == "ERR"
        assert record.source == "c2-0c0s4n1"
        assert record.facility == "kernel"
        assert record.channel is Channel.SYSLOG_UDP

    def test_ddn_lines_get_ddn_channel(self):
        record = parse_redstorm_syslog_line(DDN_LINE, 2006)
        assert record.channel is Channel.DDN
        assert record.severity == "CRIT"
        assert record.body.startswith("DMT_HINT Warning")

    def test_missing_severity_is_corruption(self):
        line = "Mar 19 08:00:05 c2-0c0s4n1 kernel: hello"
        assert parse_redstorm_syslog_line(line, 2006).corrupted

    def test_strict_raises(self):
        with pytest.raises(RedStormParseError):
            parse_redstorm_syslog_line("junk", 2006, strict=True)

    def test_round_trip(self):
        record = parse_redstorm_syslog_line(SYSLOG_LINE, 2006)
        assert render_redstorm_line(record) == SYSLOG_LINE


class TestRasPath:
    def test_fields(self):
        record = parse_redstorm_ras_line(RAS_LINE)
        assert record.source == "c0-0c1s2n3"
        assert record.facility == "ec_heartbeat_stop"
        assert record.channel is Channel.RAS_TCP

    def test_no_severity_analog(self):
        # "the Red Storm TCP log path is not syslog and has no severity
        # analog" (Section 3.2)
        assert parse_redstorm_ras_line(RAS_LINE).severity is None

    def test_full_text_carries_event_code(self):
        record = parse_redstorm_ras_line(RAS_LINE)
        assert record.full_text().startswith("ec_heartbeat_stop:")

    def test_round_trip(self):
        record = parse_redstorm_ras_line(RAS_LINE)
        assert render_redstorm_line(record) == RAS_LINE

    def test_garbage_tolerant(self):
        assert parse_redstorm_ras_line("2006-03-21 oops").corrupted


class TestDispatch:
    def test_dispatches_ras(self):
        assert parse_redstorm_line(RAS_LINE, 2006).channel is Channel.RAS_TCP

    def test_dispatches_syslog(self):
        record = parse_redstorm_line(SYSLOG_LINE, 2006)
        assert record.channel is Channel.SYSLOG_UDP

    def test_stream_mixed_formats(self):
        records = list(
            parse_redstorm_stream([SYSLOG_LINE, RAS_LINE, DDN_LINE], 2006)
        )
        assert [r.channel for r in records] == [
            Channel.SYSLOG_UDP, Channel.RAS_TCP, Channel.DDN,
        ]
        assert not any(r.corrupted for r in records)

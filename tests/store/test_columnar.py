"""The columnar store's core promises, tested in isolation: exact
write/read roundtrips, barrier-aligned resume that never double-writes a
partition, and corruption that degrades instead of crashing."""

import os

import pytest

from repro.core.categories import AlertType
from repro.resilience import wire
from repro.store import (
    ColumnarStore,
    ColumnarStoreWriter,
    MemoryAlertStore,
    StoreError,
    is_store_dir,
    partition_hour,
)
from repro.store.format import (
    COLUMN_MAGIC,
    PageColumns,
    StoreFormatError,
    decode_page,
    encode_page,
    partition_relpath,
)

from ..conftest import make_alert


def stream(n=300, categories=("DISK", "NET", "ECC"), spacing=60.0):
    """A deterministic multi-hour, multi-category alert stream."""
    alerts, flags = [], []
    for i in range(n):
        category = categories[i % len(categories)]
        alert = make_alert(
            1000.0 + i * spacing,
            source=f"n{i % 7}",
            category=category,
            alert_type=(
                AlertType.HARDWARE if category == "ECC"
                else AlertType.SOFTWARE
            ),
        )
        alerts.append(alert)
        flags.append(i % 3 != 1)
    return alerts, flags


def write_store(root, alerts, flags, page_rows=16, commits=()):
    writer = ColumnarStoreWriter(root, "test", page_rows=page_rows)
    writer.begin(0)
    for i, (alert, kept) in enumerate(zip(alerts, flags)):
        writer.append(alert, kept)
        if i + 1 in commits:
            writer.commit()
    writer.finalize()
    return writer


class TestFormat:
    def test_page_roundtrip(self):
        payload = encode_page(
            7, [0, 1, 2], [1.0, 2.0, 3.5], [True, False, True],
            [0, 1, 0], [0, 1, 0], ["a", "b"], ["warn"],
        )
        page = decode_page(payload)
        assert isinstance(page, PageColumns)
        assert page.first_seq == 7 and page.last_seq == 9
        assert list(page.timestamps) == [1.0, 2.0, 3.5]
        assert page.source_at(1) == "b"
        assert page.severity_at(0) is None
        assert page.severity_at(1) == "warn"

    def test_decode_rejects_garbage(self):
        with pytest.raises(StoreFormatError):
            decode_page(b"not a page")

    def test_partition_relpath_is_filesystem_safe(self):
        path = partition_relpath("R/MON bad:cat", 12)
        assert "/" not in path.split(os.sep, 1)[-1].split("/")[0]
        assert partition_relpath(".hidden", 0).split("/")[1].startswith("%2E")

    def test_partition_hour(self):
        assert partition_hour(0.0) == 0
        assert partition_hour(3599.9) == 0
        assert partition_hour(3600.0) == 1


class TestRoundtrip:
    def test_reader_matches_memory_store(self, tmp_path):
        alerts, flags = stream()
        write_store(str(tmp_path / "s"), alerts, flags, commits=(100,))
        disk = ColumnarStore(str(tmp_path / "s"))
        mem = MemoryAlertStore("test", alerts, flags)
        assert disk.complete
        assert disk.count() == mem.count() == len(alerts)
        assert disk.count(kept=True) == mem.count(kept=True)
        assert disk.count_by_category() == mem.count_by_category()
        assert disk.count_by_type() == mem.count_by_type()
        assert disk.categories() == mem.categories()
        assert disk.time_bounds() == mem.time_bounds()
        assert disk.time_bounds(kept=True) == mem.time_bounds(kept=True)
        assert list(disk.iter_alerts()) == alerts
        assert (list(disk.iter_alerts(kept=True))
                == [a for a, k in zip(alerts, flags) if k])
        assert not disk.degraded

    def test_multiple_partitions_exist(self, tmp_path):
        alerts, flags = stream()
        write_store(str(tmp_path / "s"), alerts, flags)
        disk = ColumnarStore(str(tmp_path / "s"))
        categories = {part.meta.category for part in disk.partitions}
        hours = {part.meta.hour for part in disk.partitions}
        assert len(categories) == 3 and len(hours) > 1

    def test_severity_roundtrips_per_row(self, tmp_path):
        alerts, flags = stream(n=10)
        for i, alert in enumerate(alerts):
            object.__setattr__(
                alert.record, "severity", "FATAL" if i % 2 else None
            )
        write_store(str(tmp_path / "s"), alerts, flags)
        disk = ColumnarStore(str(tmp_path / "s"))
        severities = [a.record.severity for a in disk.iter_alerts()]
        assert severities == [a.record.severity for a in alerts]

    def test_is_store_dir(self, tmp_path):
        alerts, flags = stream(n=5)
        write_store(str(tmp_path / "s"), alerts, flags)
        assert is_store_dir(str(tmp_path / "s"))
        assert not is_store_dir(str(tmp_path))


class TestResume:
    def test_resume_at_barrier_never_double_writes(self, tmp_path):
        alerts, flags = stream()
        root = str(tmp_path / "s")
        writer = ColumnarStoreWriter(root, "test", page_rows=16)
        writer.begin(0)
        writer.append_batch(list(zip(alerts, flags))[:140])
        watermark = writer.commit()
        assert watermark == 140
        # Crash: rows past the barrier were appended but never committed.
        writer.append_batch(list(zip(alerts, flags))[140:200])

        resumed = ColumnarStoreWriter(root, "test", page_rows=16)
        assert resumed.begin(140) == 140
        resumed.append_batch(list(zip(alerts, flags))[140:])
        resumed.finalize()

        disk = ColumnarStore(root)
        assert list(disk.iter_alerts()) == alerts
        assert disk.count_by_category() == (
            MemoryAlertStore("test", alerts, flags).count_by_category()
        )

    def test_watermark_ahead_of_manifest_is_refused(self, tmp_path):
        alerts, flags = stream(n=50)
        root = str(tmp_path / "s")
        writer = ColumnarStoreWriter(root, "test")
        writer.begin(0)
        writer.append_batch(list(zip(alerts, flags)))
        writer.commit()
        resumed = ColumnarStoreWriter(root, "test")
        with pytest.raises(StoreError, match="exceeds committed"):
            resumed.begin(51)

    def test_resume_without_manifest_is_refused(self, tmp_path):
        writer = ColumnarStoreWriter(str(tmp_path / "none"), "test")
        with pytest.raises(StoreError, match="no store manifest"):
            writer.begin(10)

    def test_begin_none_adopts_manifest_seq(self, tmp_path):
        alerts, flags = stream(n=60)
        root = str(tmp_path / "s")
        writer = ColumnarStoreWriter(root, "test")
        writer.begin(0)
        writer.append_batch(list(zip(alerts, flags))[:40])
        writer.commit()
        resumed = ColumnarStoreWriter(root, "test")
        assert resumed.begin(None) == 40
        resumed.append_batch(list(zip(alerts, flags))[40:])
        resumed.finalize()
        assert list(ColumnarStore(root).iter_alerts()) == alerts

    def test_begin_zero_wipes_previous_content(self, tmp_path):
        alerts, flags = stream(n=60)
        root = str(tmp_path / "s")
        write_store(root, alerts, flags)
        writer = ColumnarStoreWriter(root, "test")
        writer.begin(0)
        writer.append(alerts[0], True)
        writer.finalize()
        assert ColumnarStore(root).count() == 1

    def test_wrong_system_is_refused(self, tmp_path):
        alerts, flags = stream(n=5)
        root = str(tmp_path / "s")
        write_store(root, alerts, flags)
        with pytest.raises(StoreError, match="holds system"):
            ColumnarStoreWriter(root, "other").begin(None)


class TestCorruption:
    def _store(self, tmp_path):
        alerts, flags = stream()
        root = str(tmp_path / "s")
        write_store(root, alerts, flags, commits=(150,))
        return root, alerts, flags

    def test_torn_tail_beyond_manifest_is_ignored(self, tmp_path):
        root, alerts, _flags = self._store(tmp_path)
        disk = ColumnarStore(root)
        target = os.path.join(root, disk.partitions[0].meta.path)
        with open(target, "ab") as handle:
            handle.write(b"\x99" * 37)  # torn, uncommitted garbage
        fresh = ColumnarStore(root)
        assert list(fresh.iter_alerts()) == alerts
        assert not fresh.degraded

    def test_bit_rot_degrades_only_that_partition(self, tmp_path):
        root, alerts, _flags = self._store(tmp_path)
        disk = ColumnarStore(root)
        victim = disk.partitions[0].meta
        target = os.path.join(root, victim.path)
        with open(target, "r+b") as handle:
            handle.seek(wire.HEADER_SIZE + wire.FRAME_HEADER_SIZE + 3)
            handle.write(b"\xff\x00\xff")
        fresh = ColumnarStore(root)
        survivors = list(fresh.iter_alerts())
        expected = [
            a for a in alerts
            if not (a.category == victim.category
                    and partition_hour(a.timestamp) == victim.hour)
        ]
        assert survivors == expected
        assert fresh.degraded and victim.path in fresh.degraded[0]

    def test_missing_partition_file_degrades(self, tmp_path):
        root, alerts, _flags = self._store(tmp_path)
        disk = ColumnarStore(root)
        os.remove(os.path.join(root, disk.partitions[0].meta.path))
        fresh = ColumnarStore(root)
        assert len(list(fresh.iter_alerts())) < len(alerts)
        assert "missing partition file" in fresh.degraded[0]

    def test_corrupt_manifest_raises_store_error(self, tmp_path):
        root, _alerts, _flags = self._store(tmp_path)
        with open(os.path.join(root, "MANIFEST"), "r+b") as handle:
            handle.seek(wire.HEADER_SIZE + 2)
            handle.write(b"\x00\x01\x02\x03")
        with pytest.raises(StoreError, match="manifest"):
            ColumnarStore(root)

    def test_summary_requires_finalize(self, tmp_path):
        alerts, flags = stream(n=20)
        root = str(tmp_path / "s")
        writer = ColumnarStoreWriter(root, "test")
        writer.begin(0)
        writer.append_batch(list(zip(alerts, flags)))
        writer.commit()
        disk = ColumnarStore(root)
        assert not disk.complete
        with pytest.raises(StoreError):
            disk.load_summary()

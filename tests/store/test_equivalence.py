"""The tentpole's correctness contract: every analysis result and every
report rendered from a spilled columnar store is byte-identical to the
in-memory path, including across a crash/resume that lands mid-partition."""

import pytest

from repro import api as pipeline
from repro.analysis.correlation import correlation_matrix, spatial_correlation
from repro.analysis.interarrival import (
    interarrival_series,
    interarrival_times,
    interarrivals_by_category,
)
from repro.reporting import figures, tables
from repro.reporting.report import system_report
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.deadletter import DeadLetterQueue
from repro.resilience.faults import CollectorCrash, FaultConfig, FaultPlan
from repro.simulation.generator import generate_log
from repro.store import ColumnarStore, load_result

from ..conftest import SEED, SMALL_SCALE


@pytest.fixture(scope="module")
def liberty_stored(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("store") / "liberty")
    result = pipeline.run_system(
        "liberty", scale=SMALL_SCALE, seed=SEED, store_dir=root
    )
    return result, root


class TestResultEquivalence:
    def test_alert_views_equal_memory_run(self, liberty_result,
                                          liberty_stored):
        stored, _root = liberty_stored
        assert stored.raw_alerts == liberty_result.raw_alerts
        assert stored.filtered_alerts == liberty_result.filtered_alerts
        assert len(stored.raw_alerts) == len(liberty_result.raw_alerts)

    def test_result_aggregates_equal(self, liberty_result, liberty_stored):
        stored, _root = liberty_stored
        assert stored.category_counts() == liberty_result.category_counts()
        assert stored.alert_type_counts() == (
            liberty_result.alert_type_counts()
        )
        assert stored.observed_categories == (
            liberty_result.observed_categories
        )
        assert stored.summary() == liberty_result.summary()

    def test_store_is_multi_partition(self, liberty_stored):
        _result, root = liberty_stored
        store = ColumnarStore(root)
        categories = {p.meta.category for p in store.partitions}
        hours = {p.meta.hour for p in store.partitions}
        assert len(categories) > 1
        assert len(hours) > 1

    def test_analyses_equal(self, liberty_result, liberty_stored):
        stored, _root = liberty_stored
        mem_alerts = list(liberty_result.filtered_alerts)
        query = stored.alerts.filtered()

        mem_series = interarrival_series(mem_alerts)
        store_series = interarrival_series(query)
        assert (mem_series.gaps == store_series.gaps).all()
        assert list(mem_series.by_category) == list(store_series.by_category)
        for category, gaps in mem_series.by_category.items():
            assert (gaps == store_series.by_category[category]).all()
        assert (interarrival_times(query) == interarrival_times(
            mem_alerts)).all()
        assert list(interarrivals_by_category(query)) == list(
            interarrivals_by_category(mem_alerts)
        )

        categories = sorted({a.category for a in mem_alerts})[:4]
        assert correlation_matrix(query, categories) == correlation_matrix(
            mem_alerts, categories
        )
        assert spatial_correlation(query) == spatial_correlation(mem_alerts)

    def test_reports_byte_identical(self, liberty_result, liberty_stored):
        stored, _root = liberty_stored
        mem = {"liberty": liberty_result}
        spill = {"liberty": stored}
        assert tables.all_tables(spill) == tables.all_tables(mem)
        assert figures.all_figures(spill) == figures.all_figures(mem)
        assert system_report(stored) == system_report(liberty_result)

    def test_replay_from_disk_alone(self, liberty_result, liberty_stored):
        _stored, root = liberty_stored
        replayed = load_result(root)
        assert replayed.raw_alerts == liberty_result.raw_alerts
        assert replayed.summary() == liberty_result.summary()
        assert system_report(replayed) == system_report(liberty_result)
        assert tables.all_tables({"liberty": replayed}) == tables.all_tables(
            {"liberty": liberty_result}
        )


class TestAllSystems:
    @pytest.mark.parametrize("system", ["bgl", "redstorm"])
    def test_tables_byte_identical(self, system, all_results, tmp_path):
        scale = 1e-3 if system == "bgl" else SMALL_SCALE
        stored = pipeline.run_system(
            system, scale=scale, seed=SEED,
            store_dir=str(tmp_path / system),
        )
        mem = all_results[system]
        assert stored.raw_alerts == mem.raw_alerts
        assert stored.severity_tab.rows(
            list(stored.severity_tab.messages)
        ) == mem.severity_tab.rows(list(mem.severity_tab.messages))
        assert system_report(stored) == system_report(mem)


class TestResumeMidPartition:
    """Crash between commit barriers, resume from ``state_dir``: the
    store truncates back to the watermark and the rerun fills the exact
    suffix — never a duplicated or lost row."""

    TOKEN = "liberty|store-resume"

    def _run(self, state_dir, store_dir, wrap=None, every=300):
        records = generate_log("liberty", scale=SMALL_SCALE,
                               seed=SEED).records
        return pipeline.run_stream(
            wrap(records) if wrap else records,
            "liberty",
            dead_letters=DeadLetterQueue(),
            checkpointer=CheckpointManager(every=every),
            state_dir=state_dir,
            state_token=self.TOKEN,
            store_dir=store_dir,
        )

    def test_crash_resume_is_byte_identical(self, tmp_path):
        baseline = self._run(None, None)
        plan = FaultPlan(FaultConfig.crash_only(at=2000, seed=SEED))
        state_dir = str(tmp_path / "state")
        store_dir = str(tmp_path / "store")
        with pytest.raises(CollectorCrash):
            self._run(state_dir, store_dir, wrap=plan.wrap)
        resumed = self._run(state_dir, store_dir, wrap=plan.wrap)

        assert resumed.raw_alerts == baseline.raw_alerts
        assert resumed.filtered_alerts == baseline.filtered_alerts
        assert resumed.summary() == baseline.summary()
        assert system_report(resumed) == system_report(baseline)
        # And the store on disk agrees with the spliced run.
        replayed = load_result(store_dir)
        assert replayed.raw_alerts == baseline.raw_alerts
        assert not ColumnarStore(store_dir).degraded

    def test_checkpoint_without_store_cannot_resume_with_one(
        self, tmp_path
    ):
        plan = FaultPlan(FaultConfig.crash_only(at=2000, seed=SEED))
        state_dir = str(tmp_path / "state")
        with pytest.raises(CollectorCrash):
            self._run(state_dir, None, wrap=plan.wrap)
        with pytest.raises(ValueError, match="without a columnar store"):
            self._run(state_dir, str(tmp_path / "late-store"),
                      wrap=plan.wrap)


class TestApiGuards:
    def test_store_dir_rejects_supervised_runs(self, tmp_path):
        with pytest.raises(ValueError, match="supervised"):
            pipeline.run_system(
                "liberty", scale=SMALL_SCALE, seed=SEED,
                faults=FaultConfig.defaults(seed=SEED),
                store_dir=str(tmp_path / "s"),
            )

    def test_run_all_writes_one_store_per_system(self, tmp_path):
        results = pipeline.run_all(
            scale=2e-5, seed=SEED, store_dir=str(tmp_path)
        )
        for name, result in results.items():
            assert (tmp_path / name / "MANIFEST").exists()
            assert result.store is not None

"""The incremental query API: predicate pushdown, chunked scans, and the
``Sequence`` view that keeps ``PipelineResult.alerts`` working."""

import numpy as np
import pytest

from repro.store import (
    AlertQuery,
    ColumnarStore,
    MemoryAlertStore,
    StoredAlertSequence,
)

from .test_columnar import stream, write_store


@pytest.fixture(scope="module", params=["columnar", "memory"])
def store(request, tmp_path_factory):
    alerts, flags = stream(n=240)
    if request.param == "columnar":
        root = str(tmp_path_factory.mktemp("q") / "s")
        write_store(root, alerts, flags, commits=(77,))
        return ColumnarStore(root), alerts, flags
    return MemoryAlertStore("test", alerts, flags), alerts, flags


class TestAlertQuery:
    def test_aggregates_match_brute_force(self, store):
        backend, alerts, flags = store
        query = AlertQuery(backend)
        kept = [a for a, k in zip(alerts, flags) if k]
        assert query.count() == len(alerts)
        assert query.filtered().count() == len(kept)
        assert query.count_by_category() == {
            c: (sum(a.category == c for a in alerts),
                sum(a.category == c for a in kept))
            for c in {a.category for a in alerts}
        }
        assert query.time_bounds() == (alerts[0].timestamp,
                                       alerts[-1].timestamp)

    def test_where_narrowing(self, store):
        backend, alerts, _flags = store
        query = AlertQuery(backend).where("DISK")
        expected = [a for a in alerts if a.category == "DISK"]
        assert list(query) == expected
        assert query.count() == len(expected)
        assert query.categories() == {"DISK"}
        with_two = AlertQuery(backend).where("DISK", "NET")
        assert with_two.count() == sum(
            a.category in ("DISK", "NET") for a in alerts
        )

    def test_timestamps_column_scan(self, store):
        backend, alerts, flags = store
        query = AlertQuery(backend)
        assert np.array_equal(
            query.timestamps(),
            np.asarray([a.timestamp for a in alerts]),
        )
        assert np.array_equal(
            query.filtered().timestamps(),
            np.asarray([a.timestamp
                        for a, k in zip(alerts, flags) if k]),
        )
        assert np.array_equal(
            query.category_timestamps("NET"),
            np.asarray([a.timestamp for a in alerts
                        if a.category == "NET"]),
        )

    def test_chunks_partition_the_scan(self, store):
        backend, alerts, _flags = store
        chunks = list(AlertQuery(backend).chunks(size=64))
        assert all(len(c.timestamps) <= 64 for c in chunks)
        assert sum(len(c.timestamps) for c in chunks) == len(alerts)
        flat_ts = np.concatenate([c.timestamps for c in chunks])
        assert np.array_equal(
            flat_ts, np.asarray([a.timestamp for a in alerts])
        )
        flat_cats = [cat for c in chunks for cat in c.categories]
        assert flat_cats == [a.category for a in alerts]

    def test_iteration_reconstructs_equal_alerts(self, store):
        backend, alerts, flags = store
        assert list(AlertQuery(backend)) == alerts
        assert list(AlertQuery(backend).filtered()) == [
            a for a, k in zip(alerts, flags) if k
        ]


class TestStoredAlertSequence:
    def test_sequence_protocol(self, store):
        backend, alerts, _flags = store
        view = StoredAlertSequence(backend)
        assert len(view) == len(alerts)
        assert bool(view)
        assert view[0] == alerts[0]
        assert view[-1] == alerts[-1]
        assert view[3:6] == alerts[3:6]
        with pytest.raises(IndexError):
            view[len(alerts)]

    def test_equality_against_lists(self, store):
        backend, alerts, flags = store
        view = StoredAlertSequence(backend)
        assert view == alerts
        assert alerts == list(view)
        assert view != alerts[:-1]
        kept_view = StoredAlertSequence(backend, kept=True)
        assert kept_view == [a for a, k in zip(alerts, flags) if k]

    def test_query_escape_hatch(self, store):
        backend, alerts, _flags = store
        view = StoredAlertSequence(backend)
        assert view.query.count() == len(alerts)

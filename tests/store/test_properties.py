"""Property tests: for *any* alert stream and *any* commit/crash point,
the spilled store answers exactly like the in-memory one."""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.categories import AlertType  # noqa: E402
from repro.store import (  # noqa: E402
    ColumnarStore,
    ColumnarStoreWriter,
    MemoryAlertStore,
)

from ..conftest import make_alert  # noqa: E402

CATEGORIES = ("ECC", "DISK", "NET", "R/MON", "weird cat")


def _type_for(category: str) -> AlertType:
    return (
        AlertType.HARDWARE if category in ("ECC", "DISK")
        else AlertType.INDETERMINATE
    )


# One stream element: (gap to previous alert, category index, source
# index, kept).  Gaps up to ~2h force hour-partition boundaries; zero
# gaps exercise syslog's one-second timestamp collisions.
elements = st.tuples(
    st.floats(min_value=0.0, max_value=7200.0,
              allow_nan=False, allow_infinity=False),
    st.integers(min_value=0, max_value=len(CATEGORIES) - 1),
    st.integers(min_value=0, max_value=3),
    st.booleans(),
)


def build_stream(raw):
    alerts, flags, t = [], [], 0.0
    for gap, cat_idx, src_idx, kept in raw:
        t += gap
        category = CATEGORIES[cat_idx]
        alerts.append(make_alert(
            t, source=f"node-{src_idx}", category=category,
            alert_type=_type_for(category),
        ))
        flags.append(kept)
    return alerts, flags


def assert_stores_agree(disk, mem, alerts, flags):
    assert disk.count() == mem.count()
    assert disk.count(kept=True) == mem.count(kept=True)
    assert disk.count_by_category() == mem.count_by_category()
    assert disk.count_by_type() == mem.count_by_type()
    assert disk.categories() == mem.categories()
    assert disk.categories(kept=True) == mem.categories(kept=True)
    assert disk.time_bounds() == mem.time_bounds()
    assert disk.time_bounds(kept=True) == mem.time_bounds(kept=True)
    assert list(disk.iter_alerts()) == alerts
    assert list(disk.iter_alerts(kept=True)) == [
        a for a, k in zip(alerts, flags) if k
    ]
    assert not disk.degraded


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(raw=st.lists(elements, max_size=120))
def test_any_stream_roundtrips(tmp_path_factory, raw):
    alerts, flags = build_stream(raw)
    root = str(tmp_path_factory.mktemp("prop") / "s")
    writer = ColumnarStoreWriter(root, "test", page_rows=8,
                                 autoflush_rows=32)
    writer.begin(0)
    writer.append_batch(list(zip(alerts, flags)))
    writer.finalize()
    assert_stores_agree(ColumnarStore(root), MemoryAlertStore(
        "test", alerts, flags), alerts, flags)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    raw=st.lists(elements, min_size=2, max_size=100),
    data=st.data(),
)
def test_any_barrier_resume_is_exact(tmp_path_factory, raw, data):
    """Commit at an arbitrary point, 'crash' with arbitrary uncommitted
    rows, resume from the barrier: the final store equals a straight
    write of the whole stream."""
    alerts, flags = build_stream(raw)
    barrier = data.draw(
        st.integers(min_value=0, max_value=len(alerts)), label="barrier"
    )
    crashed_extra = data.draw(
        st.integers(min_value=0, max_value=len(alerts) - barrier),
        label="uncommitted",
    )
    root = str(tmp_path_factory.mktemp("prop") / "s")
    pairs = list(zip(alerts, flags))

    writer = ColumnarStoreWriter(root, "test", page_rows=8)
    writer.begin(0)
    writer.append_batch(pairs[:barrier])
    assert writer.commit() == barrier
    # Lost to the crash: appended but never committed.
    writer.append_batch(pairs[barrier:barrier + crashed_extra])

    resumed = ColumnarStoreWriter(root, "test", page_rows=8)
    assert resumed.begin(barrier) == barrier
    resumed.append_batch(pairs[barrier:])
    resumed.finalize()

    assert_stores_agree(ColumnarStore(root), MemoryAlertStore(
        "test", alerts, flags), alerts, flags)

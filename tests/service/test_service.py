"""The running daemon: real sockets, isolation, degradation, drain.

Holds the PR's acceptance property at test scale: concurrent tenants on
real loopback transports, one of them crashing its worker on every
record, and the healthy tenants' alert streams are exactly what a serial
run produces — while every record of the sick tenant is accounted.
"""

import asyncio

import pytest

from repro.engine.path import AlertPath
from repro.logio.writer import renderer_for
from repro.service import IngestService, ServiceConfig, query_stats
from repro.service.router import format_envelope
from repro.simulation.generator import generate_log

from ..conftest import SEED, SMALL_SCALE


def native_lines(system, n=None, tenant=None):
    render = renderer_for(system)
    records = list(
        generate_log(system, scale=SMALL_SCALE, seed=SEED).records
    )
    if n is not None:
        records = records[:n]
    if tenant is None:
        return [render(r) for r in records]
    return [format_envelope(tenant, system, render(r)) for r in records]


def quick_config(**kw):
    kw.setdefault("housekeeping_interval", 0.02)
    kw.setdefault("max_buffer", 1 << 15)
    return ServiceConfig(**kw)


async def wait_for(predicate, timeout=5.0, interval=0.005):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() >= deadline:
            raise AssertionError("condition not met before timeout")
        await asyncio.sleep(interval)


class TestTransports:
    def test_tcp_multi_tenant_multi_dialect(self):
        """Three tenants on three dialects over one TCP connection each,
        interleaved; each gets its own isolated accounting."""
        streams = {
            "lib": ("liberty", native_lines("liberty", 150, "lib")),
            "bg": ("bgl", native_lines("bgl", 150, "bg")),
            "rs": ("redstorm", native_lines("redstorm", 150, "rs")),
        }

        async def main():
            service = IngestService(quick_config())
            await service.start()

            async def send(lines):
                _, writer = await asyncio.open_connection(
                    "127.0.0.1", service.tcp_port
                )
                for line in lines:
                    writer.write(line.encode() + b"\n")
                await writer.drain()
                writer.close()
                await writer.wait_closed()

            await asyncio.gather(
                *(send(lines) for _, lines in streams.values())
            )
            await wait_for(lambda: all(
                t in service.router.tenants
                and service.router.tenants[t].counters.received == 150
                for t in streams
            ))
            await service.drain()
            return service

        service = asyncio.run(main())
        assert service.state == "stopped"
        report = service.final_report()
        for tenant_id, (system, _) in streams.items():
            row = report[tenant_id]
            assert row["system"] == system
            assert row["received"] == 150
            assert row["processed"] == 150
            assert row["conserves"]
        assert report["_service"]["unroutable"] == 0

    def test_udp_datagrams(self):
        lines = native_lines("liberty", 50, "udp-t")

        async def main():
            service = IngestService(quick_config())
            await service.start()
            loop = asyncio.get_running_loop()
            transport, _ = await loop.create_datagram_endpoint(
                asyncio.DatagramProtocol,
                remote_addr=("127.0.0.1", service.udp_port),
            )
            for line in lines:
                transport.sendto(line.encode())
                await asyncio.sleep(0.001)  # pace below loopback buffers
            transport.close()
            await wait_for(
                lambda: "udp-t" in service.router.tenants
                and service.router.tenants["udp-t"].counters.received == 50
            )
            await service.drain()
            return service

        service = asyncio.run(main())
        row = service.final_report()["udp-t"]
        assert row["processed"] == 50
        assert row["conserves"]

    def test_unroutable_lines_are_accounted(self):
        async def main():
            service = IngestService(quick_config())
            await service.start()
            _, writer = await asyncio.open_connection(
                "127.0.0.1", service.tcp_port
            )
            writer.write(b"no envelope here\n")
            writer.write(b"@tenant-without-system junk\n")
            writer.write(b"@t:unknown-dialect payload\n")
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await wait_for(
                lambda: service.router.unroutable.quarantined == 3
            )
            await service.drain()
            return service

        service = asyncio.run(main())
        assert service.router.unroutable.quarantined == 3
        assert dict(service.router.unroutable.by_reason) == {
            "unroutable": 3
        }
        assert len(service.router.tenants) == 0


class TestIsolation:
    def test_crashing_tenant_does_not_delay_or_drop_others(self):
        """ACCEPTANCE: tenant "sick" crashes its worker on every record;
        tenants "well-*" still produce byte-identical serial alerts."""
        records = list(
            generate_log("liberty", scale=SMALL_SCALE, seed=SEED).records
        )
        render = renderer_for("liberty")

        baseline = AlertPath("liberty")
        for record in records:
            if baseline.admit(record):
                baseline.process(record)

        def hook(tenant_id, record):
            if tenant_id == "sick":
                raise RuntimeError("sick tenant crashes on everything")

        async def main():
            service = IngestService(quick_config(
                fault_hook=hook, restart_budget=2,
                alert_tail=1 << 15, breaker_threshold=10_000,
            ))
            await service.start()
            # Interleave: every well-tenant line bracketed by sick lines.
            for record in records:
                line = render(record)
                service.router.ingest_line(
                    format_envelope("sick", "liberty", line)
                )
                service.router.ingest_line(
                    format_envelope("well-a", "liberty", line)
                )
                service.router.ingest_line(
                    format_envelope("well-b", "liberty", line)
                )
                if len(service.router.tenants["well-a"].queue) > 512:
                    await asyncio.sleep(0)  # let workers breathe
            await service.drain()
            return service

        service = asyncio.run(main())
        tenants = service.router.tenants
        for name in ("well-a", "well-b"):
            well = tenants[name]
            assert well.counters.processed == len(records)
            assert well.counters.crashes == 0
            assert well.alert_tail == tuple(baseline.sink.raw_alerts)
            assert well.counters.conserves(0)
        sick = tenants["sick"]
        assert sick.quarantined
        assert sick.counters.processed == 0
        assert sick.counters.conserves(0)  # every record accounted
        assert sick.final_dead_letters is not None


class TestStatsEndpoint:
    def test_commands(self):
        lines = native_lines("liberty", 80, "acme")

        async def main():
            service = IngestService(quick_config())
            await service.start()
            for line in lines:
                service.router.ingest_line(line)
            await wait_for(
                lambda: service.router.tenants["acme"].counters.processed
                == 80
            )
            loop = asyncio.get_running_loop()

            def ask(command):
                return query_stats(
                    "127.0.0.1", service.stats_port, command
                )

            stats = await loop.run_in_executor(None, ask, "stats")
            health = await loop.run_in_executor(None, ask, "health")
            tenant = await loop.run_in_executor(None, ask, "tenant acme")
            alerts = await loop.run_in_executor(None, ask, "alerts acme 5")
            missing = await loop.run_in_executor(None, ask, "tenant nope")
            bogus = await loop.run_in_executor(None, ask, "frobnicate")
            await service.drain()
            return stats, health, tenant, alerts, missing, bogus

        stats, health, tenant, alerts, missing, bogus = asyncio.run(main())
        assert stats["state"] == "running"
        assert "acme" in stats["tenants"]
        assert health["conserving"]
        assert tenant["received"] == 80
        assert tenant["conserves"]
        assert len(alerts["alerts"]) <= 5
        for alert in alerts["alerts"]:
            assert {"timestamp", "source", "category", "type", "body"} \
                <= set(alert)
        assert "error" in missing
        assert "error" in bogus and "commands" in bogus


class TestLifecycle:
    def test_idle_eviction_and_resurrection(self):
        lines = native_lines("liberty", 120, "sleepy")

        async def main():
            service = IngestService(quick_config(
                idle_ttl=0.05, housekeeping_interval=0.01,
            ))
            await service.start()
            for line in lines[:60]:
                service.router.ingest_line(line)
            await wait_for(lambda: "sleepy" in service.router.parked)
            parked_row = service.tenant_stats("sleepy")
            assert parked_row["parked"]
            assert parked_row["processed"] == 60
            # New traffic resurrects the tenant from its checkpoint.
            for line in lines[60:]:
                service.router.ingest_line(line)
            assert "sleepy" in service.router.tenants
            await service.drain()
            return service

        service = asyncio.run(main())
        row = service.final_report()["sleepy"]
        assert row["received"] == 120
        assert row["processed"] == 120
        assert row["evictions"] == 1
        assert row["resumes"] == 1
        assert row["conserves"]

    def test_degraded_mode_flips_coarse_stats(self):
        lines = native_lines("liberty", 10, "t")

        async def main():
            service = IngestService(quick_config(
                housekeeping_interval=0.01, sustain=2,
            ))
            await service.start()
            for line in lines:
                service.router.ingest_line(line)
            tenant = service.router.tenants["t"]
            assert not tenant.path.stats_collector.coarse

            service.router.total_queued = (
                lambda: service.config.global_queue_budget
            )
            await wait_for(lambda: service.router.governor.degraded)
            assert tenant.path.stats_collector.coarse
            assert any("degraded" in e for e in service.events)

            del service.router.total_queued  # restore the real method
            await wait_for(
                lambda: not service.router.governor.degraded
            )
            assert not tenant.path.stats_collector.coarse
            await service.drain()

        asyncio.run(main())

    def test_double_start_rejected(self):
        async def main():
            service = IngestService(quick_config())
            await service.start()
            with pytest.raises(RuntimeError, match="cannot start"):
                await service.start()
            await service.drain()

        asyncio.run(main())

"""Durable tenant state: a killed ``repro serve`` must resurrect every
tenant byte-identical (quiesced case), rebuild from the journal alone
when it died before its first checkpoint, keep a quarantined tenant
quarantined across the restart, and degrade — not crash — when the
state directory's disk fails."""

import asyncio
import os
import time
import urllib.parse

import pytest

from repro.logio.writer import renderer_for
from repro.resilience import wire
from repro.resilience.faults import FaultyFilesystem
from repro.service.config import ServiceConfig
from repro.service.persistence import (
    TenantStateStore,
    decode_parked,
    encode_parked,
    tenant_dirname,
)
from repro.service.router import TenantRouter, format_envelope
from repro.service.tenant import Tenant
from repro.simulation.generator import generate_log

from ..conftest import SEED, SMALL_SCALE

#: Counters that must survive a kill/resurrect cycle exactly.  Lifecycle
#: counters (``resumes``, ``evictions``) legitimately differ between an
#: interrupted and an uninterrupted run.
COMPARE = ("received", "shed", "refused", "processed",
           "alerts_raw", "alerts_filtered")

TENANTS = {"acme": "bgl", "zenith": "spirit"}


def wire_lines(tenant_id, system, n=250):
    render = renderer_for(system)
    records = list(
        generate_log(system, scale=SMALL_SCALE, seed=SEED).records
    )[:n]
    return [format_envelope(tenant_id, system, render(r)) for r in records]


def roomy_config(state_dir=None, **kw):
    kw.setdefault("max_buffer", 1 << 16)
    kw.setdefault("alert_tail", 1 << 16)
    kw.setdefault("dead_letter_capacity", 1 << 16)
    return ServiceConfig(state_dir=state_dir, **kw)


async def quiesce(router, expected):
    """Wait until every expected tenant has consumed its whole feed."""
    deadline = asyncio.get_running_loop().time() + 10.0
    while True:
        live = [router.tenants[t] for t in expected if t in router.tenants]
        if len(live) == len(expected) and all(
            not t.queue and t.counters.received >= expected[t.tenant_id]
            for t in live
        ):
            return
        if asyncio.get_running_loop().time() >= deadline:
            raise AssertionError("tenants did not quiesce")
        await asyncio.sleep(0.005)


def tenant_state(router):
    return {
        tenant_id: {
            "counters": tenant.counters.as_dict(),
            "tail": tenant.alert_tail,
        }
        for tenant_id, tenant in router.tenants.items()
    }


class TestParkedCodec:
    def _parked(self):
        async def main():
            tenant = Tenant("acme", "bgl", roomy_config())
            tenant.start()
            records = list(
                generate_log("bgl", scale=SMALL_SCALE, seed=SEED).records
            )[:120]
            for record in records:
                tenant.offer(record)
            await tenant.drain()
            return tenant.park()

        return asyncio.run(main())

    def test_round_trip_drops_live_compressor(self):
        bundle = self._parked()
        blob = encode_parked(bundle, {"generation": 4})
        payloads, _end, error = wire.scan_frames(
            wire.file_header(wire.CHECKPOINT_MAGIC) + blob
        )
        assert error is None
        decoded, meta = decode_parked(payloads[0])
        assert meta == {"generation": 4}
        assert decoded.tenant_id == bundle.tenant_id
        assert decoded.counters.as_dict() == bundle.counters.as_dict()
        assert decoded.dead_letters == bundle.dead_letters
        assert decoded.checkpoint.raw_alerts == bundle.checkpoint.raw_alerts
        assert decoded.checkpoint.stats.compressor is None
        assert (decoded.checkpoint.stats.stats
                == bundle.checkpoint.stats.stats)

    def test_wrong_payload_type_rejected(self):
        import pickle

        with pytest.raises(wire.WireError):
            decode_parked(pickle.dumps({"meta": {}, "parked": "not one"}))
        with pytest.raises(wire.WireError):
            decode_parked(b"\x00 not a pickle at all")


class TestDirnames:
    @pytest.mark.parametrize("tenant_id", [
        "plain", "a/b:c", "../../escape", "..", ".", ".hidden",
        "sp ce", "unié", "@t:sys",
    ])
    def test_quoting_cannot_escape_the_state_dir(self, tenant_id):
        name = tenant_dirname(tenant_id)
        assert os.sep not in name
        assert name not in ("", ".", "..")
        assert not name.startswith(".")  # no dotfile/traversal names
        root = os.path.join("/state", "tenants")
        joined = os.path.normpath(os.path.join(root, name))
        assert joined.startswith(root + os.sep)
        assert urllib.parse.unquote(name) == tenant_id  # still invertible


class TestRouterRoundTrip:
    def test_quiesced_kill_resurrects_byte_identical(self, tmp_path):
        """ACCEPTANCE (service durability): feed half of each tenant's
        stream, quiesce, park to disk, throw the router away (the kill),
        route the second half through a brand-new router — counters and
        alert tails must equal one uninterrupted run's exactly."""
        feeds = {
            tenant_id: wire_lines(tenant_id, system)
            for tenant_id, system in TENANTS.items()
        }
        expected = {t: len(lines) for t, lines in feeds.items()}

        async def uninterrupted():
            router = TenantRouter(roomy_config())
            for lines in feeds.values():
                for line in lines:
                    router.ingest_line(line)
            await quiesce(router, expected)
            return tenant_state(router)

        async def interrupted():
            state_dir = str(tmp_path / "state")
            first = TenantRouter(roomy_config(state_dir))
            for lines in feeds.values():
                for line in lines[:len(lines) // 2]:
                    first.ingest_line(line)
            await quiesce(
                first, {t: len(v) // 2 for t, v in feeds.items()}
            )
            evicted = first.evict_idle(
                now=time.monotonic() + first.config.idle_ttl + 1
            )
            assert sorted(evicted) == sorted(TENANTS)
            # The kill: nothing in-memory survives to the second router.
            del first

            second = TenantRouter(roomy_config(state_dir))
            assert sorted(second.parked) == sorted(TENANTS)
            for lines in feeds.values():
                for line in lines[len(lines) // 2:]:
                    second.ingest_line(line)
            await quiesce(second, expected)
            assert not second.state_store.status.degraded
            for tenant in second.tenants.values():
                assert tenant.counters.resumes == 1
            return tenant_state(second)

        reference = asyncio.run(uninterrupted())
        recovered = asyncio.run(interrupted())
        for tenant_id in TENANTS:
            for key in COMPARE:
                assert (
                    recovered[tenant_id]["counters"][key]
                    == reference[tenant_id]["counters"][key]
                ), f"{tenant_id}.{key} diverged across the kill"
            assert recovered[tenant_id]["tail"] == reference[tenant_id]["tail"]

    def test_journal_alone_rebuilds_an_uncheckpointed_tenant(self, tmp_path):
        """Kill before the first checkpoint: checkpoint_every is huge and
        the tenant is never parked, so recovery has only the WAL."""
        state_dir = str(tmp_path / "state")
        lines = wire_lines("acme", "bgl", 200)

        async def main():
            router = TenantRouter(
                roomy_config(state_dir, checkpoint_every=10**9)
            )
            for line in lines:
                router.ingest_line(line)
            await quiesce(router, {"acme": len(lines)})
            tenant = router.tenants["acme"]
            assert tenant.checkpoint is None  # really no checkpoint taken
            return tenant.counters.as_dict(), tenant.alert_tail

        counters, tail = asyncio.run(main())

        store = TenantStateStore(
            state_dir, roomy_config(state_dir, checkpoint_every=10**9)
        )
        parked = store.load_all()
        assert sorted(parked) == ["acme"]
        bundle = parked["acme"]
        assert any("journal alone" in note for note in store.status.notes)
        for key in COMPARE:
            assert bundle.counters.as_dict()[key] == counters[key], key
        assert bundle.counters.conserves(0)
        # The full tail fits in a roomy alert_tail, so it survives whole.
        assert bundle.checkpoint.raw_alerts == tail

    def test_quarantine_survives_the_restart(self, tmp_path):
        """A tenant that spent its restart budget must come back
        quarantined — a crash-loop cannot launder its budget through a
        service restart."""
        state_dir = str(tmp_path / "state")

        def doomed(tenant_id, record):
            raise RuntimeError("injected poison")

        config = roomy_config(state_dir, fault_hook=doomed, restart_budget=0)
        lines = wire_lines("acme", "bgl", 50)

        async def crash_out():
            router = TenantRouter(config)
            for line in lines:
                router.ingest_line(line)
            await router.drain()
            tenant = router.tenants["acme"]
            assert tenant.quarantined
            assert tenant.counters.conserves(0)
            return tenant.counters.as_dict()

        final = asyncio.run(crash_out())

        async def come_back():
            # Same restart budget, but no fault hook: the tenant must be
            # quarantined by its persisted crash count, not by crashing
            # again.
            clean = roomy_config(state_dir, restart_budget=0)
            router = TenantRouter(clean)
            assert sorted(router.parked) == ["acme"]
            router.ingest_line(lines[0])
            tenant = router.tenants["acme"]
            assert tenant.quarantined
            await router.drain()
            assert tenant.counters.conserves(0)
            # The offered line was refused, not processed.
            assert tenant.counters.processed == final["processed"]
            assert tenant.counters.refused == final["refused"] + 1

        asyncio.run(come_back())

    def test_degraded_storage_keeps_the_tenant_serving(self, tmp_path):
        """ENOSPC on every state write: the tenant's output and
        conservation are untouched; the shared status carries the latch."""
        config = roomy_config(str(tmp_path / "state"))
        store = TenantStateStore(
            str(tmp_path / "state"), config, fs=FaultyFilesystem(fail_after=0)
        )
        records = list(
            generate_log("bgl", scale=SMALL_SCALE, seed=SEED).records
        )[:200]

        async def run(persistence):
            tenant = Tenant("acme", "bgl", config, persistence=persistence)
            tenant.start()
            for record in records:
                tenant.offer(record)
            await tenant.drain()
            return tenant

        plain = asyncio.run(run(None))
        degraded = asyncio.run(run(store.for_tenant("acme", "bgl")))

        assert store.status.degraded
        assert degraded.counters.conserves(0)
        assert degraded.alert_tail == plain.alert_tail
        for key in COMPARE:
            assert (degraded.counters.as_dict()[key]
                    == plain.counters.as_dict()[key]), key
        # And nothing half-written is trusted on the next startup.
        fresh = TenantStateStore(str(tmp_path / "state"), config)
        assert fresh.load_all() == {}

"""One tenant's pipeline: equivalence, supervision, conservation.

The tenant is a bounded pipeline run that never ends; these tests pin
the contract down: an unpressured tenant reproduces the serial path's
alerts exactly, a crashing tenant degrades by the supervisor rules
(dead-letter the poison record, restore from checkpoint, quarantine at
budget exhaustion with a final accounting snapshot), and the counters
partition every received record no matter what happened.
"""

import asyncio

from repro.engine.path import AlertPath
from repro.service.config import ServiceConfig
from repro.service.tenant import Tenant
from repro.simulation.generator import generate_log

from ..conftest import SEED, SMALL_SCALE


def liberty_records(n=None):
    records = list(
        generate_log("liberty", scale=SMALL_SCALE, seed=SEED).records
    )
    return records if n is None else records[:n]


def roomy_config(**kw):
    kw.setdefault("max_buffer", 1 << 16)
    kw.setdefault("alert_tail", 1 << 16)
    return ServiceConfig(**kw)


async def run_tenant(tenant, records):
    tenant.start()
    for record in records:
        tenant.offer(record)
    await tenant.drain()
    return tenant


def conservation_ok(tenant):
    return tenant.counters.conserves(len(tenant.queue))


class TestEquivalence:
    def test_unpressured_tenant_matches_serial_path(self):
        """ACCEPTANCE (isolation baseline): with no pressure and no
        faults, a tenant's alert stream is the serial path's, exactly."""
        records = liberty_records()

        baseline = AlertPath("liberty")
        for record in records:
            if baseline.admit(record):
                baseline.process(record)

        async def main():
            tenant = Tenant("t", "liberty", roomy_config())
            return await run_tenant(tenant, records)

        tenant = asyncio.run(main())
        assert tenant.counters.processed == len(records)
        assert tenant.counters.shed == 0
        assert tenant.counters.alerts_raw == len(baseline.sink.raw_alerts)
        assert (
            tenant.counters.alerts_filtered
            == len(baseline.sink.filtered_alerts)
        )
        assert tenant.alert_tail == tuple(baseline.sink.raw_alerts)
        assert conservation_ok(tenant)

    def test_drain_takes_final_checkpoint(self):
        async def main():
            tenant = Tenant("t", "liberty", roomy_config())
            return await run_tenant(tenant, liberty_records(100))

        tenant = asyncio.run(main())
        assert tenant.checkpoint is not None
        assert tenant.checkpoint.records_consumed == tenant.counters.processed


class TestCrashSupervision:
    def crashy_config(self, crash_on, budget=3, **kw):
        """Crash the worker on specific record indices (by arrival)."""
        seen = {"n": 0}

        def hook(tenant_id, record):
            seen["n"] += 1
            if seen["n"] in crash_on:
                raise RuntimeError(f"injected crash #{seen['n']}")

        return roomy_config(
            fault_hook=hook, restart_budget=budget,
            breaker_threshold=100, **kw,
        )

    def test_crash_dead_letters_poison_record_and_continues(self):
        records = liberty_records(200)

        async def main():
            tenant = Tenant(
                "t", "liberty", self.crashy_config(crash_on={50})
            )
            return await run_tenant(tenant, records)

        tenant = asyncio.run(main())
        assert tenant.counters.crashes == 1
        assert not tenant.quarantined
        # The poison record is accounted (refused), the rest processed.
        assert tenant.counters.refused_by_reason.get("worker-crash") == 1
        assert tenant.counters.processed == len(records) - 1
        assert conservation_ok(tenant)

    def test_budget_exhaustion_quarantines_with_final_snapshot(self):
        records = liberty_records(100)

        async def main():
            tenant = Tenant(
                "t", "liberty",
                self.crashy_config(crash_on={10, 20, 30}, budget=2),
            )
            tenant.start()
            for record in records:
                tenant.offer(record)
            # Worker quarantines mid-stream; wait for it to settle.
            while not tenant.quarantined:
                await asyncio.sleep(0.001)
            await tenant.drain()
            # Late arrivals after quarantine are refused, not lost.
            tenant.offer(records[0])
            return tenant

        tenant = asyncio.run(main())
        assert tenant.quarantined
        assert tenant.counters.crashes == 3  # budget 2 + the fatal third
        assert tenant.final_dead_letters is not None
        reasons = dict(tenant.final_dead_letters.by_reason)
        assert reasons.get("worker-crash") == 3
        # Queued records at quarantine time were flushed with a reason,
        # and the post-quarantine offer was refused too.
        assert tenant.counters.refused_by_reason.get(
            "tenant-quarantined", 0
        ) >= 1
        assert conservation_ok(tenant)

    def test_restored_path_never_unreports_alerts(self):
        """Journaled alert counts are monotonic across crash-restores:
        a restart must not roll back alerts already reported."""
        records = liberty_records()

        async def main():
            config = self.crashy_config(
                crash_on={len(records) // 2}, checkpoint_every=50,
            )
            tenant = Tenant("t", "liberty", config)
            counts = []

            orig = tenant._rebuild_path

            def spying_rebuild():
                counts.append(tenant.counters.alerts_raw)
                orig()
                counts.append(tenant.counters.alerts_raw)

            tenant._rebuild_path = spying_rebuild
            await run_tenant(tenant, records)
            return tenant, counts

        tenant, counts = asyncio.run(main())
        assert counts, "crash did not trigger a rebuild"
        before, after = counts[0], counts[1]
        assert after == before  # rebuild preserved the journal
        assert tenant.counters.alerts_raw >= after


class TestBreaker:
    def test_breaker_opens_and_recovers(self):
        records = liberty_records(60)

        def hook(tenant_id, record):
            if hook.arm:
                raise RuntimeError("crash while armed")

        hook.arm = True
        config = roomy_config(
            fault_hook=hook, restart_budget=100,
            breaker_threshold=2, breaker_reset=0.05,
        )

        async def main():
            tenant = Tenant("t", "liberty", config)
            tenant.start()
            # Two crashing records open the breaker.
            for record in records[:2]:
                tenant.offer(record)
                await asyncio.sleep(0.01)
            while tenant.breaker_state != "open":
                await asyncio.sleep(0.001)
            # While open, arrivals are refused with circuit-open.
            tenant.offer(records[2])
            assert tenant.counters.refused_by_reason.get("circuit-open") == 1
            # After the reset timeout, a healthy stream closes it again.
            hook.arm = False
            await asyncio.sleep(0.06)
            for record in records[3:]:
                tenant.offer(record)
            await tenant.drain()
            return tenant

        tenant = asyncio.run(main())
        assert tenant.breaker_state == "closed"
        assert tenant.breaker.times_opened == 1
        assert conservation_ok(tenant)


class TestSheddingAndConservation:
    def test_flood_against_tiny_queue_conserves(self):
        """Offer faster than the worker can run: every record is shed
        with a class, spilled with a reason, queued, or processed."""
        records = liberty_records(500)
        config = ServiceConfig(max_buffer=8, service_batch=4)

        async def main():
            tenant = Tenant("t", "liberty", config)
            tenant.start()
            for record in records:  # no await: a genuine burst
                tenant.offer(record)
            assert tenant.counters.received == len(records)
            assert conservation_ok(tenant)  # mid-flight, queue non-empty
            await tenant.drain()
            return tenant

        tenant = asyncio.run(main())
        assert conservation_ok(tenant)
        assert tenant.counters.shed + tenant.counters.refused > 0
        # Tagged alerts were never silently shed: anything shed outright
        # is a chatter/duplicate class.
        assert "tagged-alert" not in tenant.counters.shed_by_class


class TestParkResume:
    def test_park_and_resume_preserves_accounting_and_state(self):
        records = liberty_records(400)
        config = roomy_config(idle_ttl=0.0)

        async def main():
            tenant = Tenant("t", "liberty", config)
            tenant.start()
            for record in records[:200]:
                tenant.offer(record)
            while tenant.counters.processed < 200:
                await asyncio.sleep(0.001)
            assert tenant.evictable(tenant.last_activity + 1.0)
            parked = tenant.park()

            resumed = Tenant("t", "liberty", config, parked=parked)
            await run_tenant(resumed, records[200:])
            return resumed

        resumed = asyncio.run(main())
        assert resumed.counters.processed == len(records)
        assert resumed.counters.evictions == 1
        assert resumed.counters.resumes == 1
        assert conservation_ok(resumed)

        # Alert totals match an uninterrupted run.
        async def uninterrupted():
            tenant = Tenant("u", "liberty", roomy_config())
            return await run_tenant(tenant, records)

        baseline = asyncio.run(uninterrupted())
        assert resumed.counters.alerts_raw == baseline.counters.alerts_raw
        assert (
            resumed.counters.alerts_filtered
            == baseline.counters.alerts_filtered
        )

    def test_quarantined_tenant_is_not_evictable(self):
        def hook(tenant_id, record):
            raise RuntimeError("always")

        config = roomy_config(
            fault_hook=hook, restart_budget=0, idle_ttl=0.0,
        )

        async def main():
            tenant = Tenant("t", "liberty", config)
            tenant.start()
            tenant.offer(liberty_records(1)[0])
            while not tenant.quarantined:
                await asyncio.sleep(0.001)
            await tenant.drain()
            return tenant

        tenant = asyncio.run(main())
        assert not tenant.evictable(tenant.last_activity + 9999.0)

"""Envelope protocol, native-line dispatch, and global governance."""

import pytest

from repro.logio.writer import renderer_for
from repro.resilience.backpressure import PressureLevel
from repro.service.config import ServiceConfig
from repro.service.router import (
    MemoryGovernor,
    format_envelope,
    parse_envelope,
    parse_native_line,
)
from repro.simulation.generator import generate_log
from repro.systems.specs import SYSTEMS

from ..conftest import SEED, SMALL_SCALE


class TestEnvelope:
    def test_round_trip(self):
        line = format_envelope("acme", "liberty", "native payload here")
        assert parse_envelope(line) == ("acme", "liberty", "native payload here")

    @pytest.mark.parametrize("line", [
        "no envelope at all",
        "@missing-colon rest",
        "@:nosystem rest",
        "@notenant: rest",
        "@acme:liberty",      # no space, no payload
        "",
    ])
    def test_malformed(self, line):
        assert parse_envelope(line) is None

    def test_payload_may_contain_at_and_colon(self):
        tenant, system, rest = parse_envelope(
            "@t:bgl body with @signs and :colons"
        )
        assert (tenant, system) == ("t", "bgl")
        assert rest == "body with @signs and :colons"


class TestNativeDispatch:
    @pytest.mark.parametrize("system", sorted(SYSTEMS))
    def test_all_five_dialects_round_trip(self, system):
        """Rendered native lines parse back in every dialect — the
        service understands exactly what the writers emit."""
        render = renderer_for(system)
        records = list(
            generate_log(system, scale=SMALL_SCALE, seed=SEED).records
        )[:50]
        assert records
        for record in records:
            parsed = parse_native_line(render(record), system, year=2005)
            assert parsed.system == system or parsed.corrupted
            assert not parsed.corrupted


class TestMemoryGovernor:
    def make(self, budget=100, sustain=3):
        return MemoryGovernor(ServiceConfig(
            global_queue_budget=budget, sustain=sustain,
        ))

    def test_levels_with_hysteresis(self):
        gov = self.make()
        assert gov.sample(10) == PressureLevel.NORMAL
        assert gov.sample(80) == PressureLevel.ELEVATED
        # Between low (50) and high (80): stays elevated (hysteresis).
        assert gov.sample(60) == PressureLevel.ELEVATED
        assert gov.sample(100) == PressureLevel.CRITICAL
        assert gov.sample(60) == PressureLevel.ELEVATED
        assert gov.sample(10) == PressureLevel.NORMAL

    def test_degraded_latches_after_sustain_and_clears(self):
        gov = self.make(sustain=3)
        for _ in range(2):
            gov.sample(90)
        assert not gov.degraded
        gov.sample(90)
        assert gov.degraded
        # A brief dip does not clear it...
        gov.sample(0)
        assert gov.degraded
        gov.sample(90)
        for _ in range(3):
            gov.sample(0)
        assert not gov.degraded
        assert gov.degraded_entered == 1

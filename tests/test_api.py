"""The stable ``repro.api`` surface and the ``repro.pipeline`` shim.

Three guarantees: the facade names exist, work, and are re-exported at
the package root; the deprecated ``repro.pipeline`` entry points still
resolve but warn; and nothing under ``examples/`` or ``scripts/``
imports the deprecated surface or engine internals directly —
``repro.api`` is their only import surface.
"""

from __future__ import annotations

import re
import warnings
from pathlib import Path

import pytest

import repro
from repro import api

REPO = Path(__file__).resolve().parent.parent


class TestFacade:
    def test_all_exports_resolve(self):
        for name in api.__all__:
            assert hasattr(api, name), f"repro.api.{name} missing"

    def test_root_reexports(self):
        for name in ("run", "run_all", "tag_lines", "iter_alerts", "serve"):
            assert getattr(repro, name) is getattr(api, name)

    def test_run_generates_when_no_records(self):
        result = api.run("liberty", scale=2e-5, seed=7)
        assert result.stats.messages > 0

    def test_run_consumes_records_when_given(self):
        from repro.simulation.generator import generate_log

        generated = generate_log("liberty", scale=2e-5, seed=7)
        records = list(generated.records)
        via_run = api.run("liberty", records=iter(records))
        via_stream = api.run_stream(iter(records), "liberty")
        assert via_run.raw_alert_count == via_stream.raw_alert_count
        assert via_run.stats.raw_bytes == via_stream.stats.raw_bytes

    def test_iter_alerts_matches_pipeline_tagging(self):
        from repro.simulation.generator import generate_log

        records = list(generate_log("liberty", scale=2e-5, seed=7).records)
        alerts = list(api.iter_alerts(records, "liberty"))
        result = api.run_stream(iter(records), "liberty")
        assert [a.category for a in alerts] == \
            [a.category for a in result.raw_alerts]

    def test_tag_lines_round_trips_native_format(self, tmp_path):
        from repro.logio.writer import write_log
        from repro.simulation.generator import generate_log

        records = list(generate_log("liberty", scale=2e-5, seed=7).records)
        path = tmp_path / "liberty.log"
        write_log(iter(records), path, "liberty")
        alerts = api.tag_lines(path.read_text().splitlines(), "liberty")
        expected = list(api.iter_alerts(records, "liberty"))
        assert [a.category for a in alerts] == \
            [a.category for a in expected]

    def test_serve_rejects_config_plus_kwargs(self):
        from repro.service import ServiceConfig

        with pytest.raises(TypeError):
            api.serve(ServiceConfig(), tcp_port=1)


class TestDeprecationShim:
    @pytest.mark.parametrize("name", ["run_stream", "run_system", "run_all"])
    def test_entry_points_warn_and_delegate(self, name):
        from repro import pipeline

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            func = getattr(pipeline, name)
        assert func is getattr(api, name)
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.api" in str(w.message)
            for w in caught
        ), f"no DeprecationWarning for pipeline.{name}"

    def test_constants_reexport_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro import pipeline

            assert pipeline.DEFAULT_RESTART_BUDGET == \
                api.DEFAULT_RESTART_BUDGET
            assert pipeline.DEFAULT_CHECKPOINT_EVERY == \
                api.DEFAULT_CHECKPOINT_EVERY
            assert pipeline.DEFAULT_THRESHOLD == api.DEFAULT_THRESHOLD
            assert pipeline.PipelineResult is api.PipelineResult

    def test_unknown_attribute_raises(self):
        from repro import pipeline

        with pytest.raises(AttributeError):
            pipeline.no_such_name


class TestImportBoundary:
    """examples/ and scripts/ must import only the stable surface."""

    FORBIDDEN = re.compile(
        r"^\s*(?:from\s+repro\.pipeline\s+import"
        r"|from\s+repro\s+import\s+pipeline\b"
        r"|from\s+repro\.engine\.drivers\s+import"
        r"|import\s+repro\.pipeline\b)",
        re.MULTILINE,
    )

    @pytest.mark.parametrize("directory", ["examples", "scripts"])
    def test_no_deprecated_imports(self, directory):
        offenders = []
        for path in sorted((REPO / directory).glob("*.py")):
            if self.FORBIDDEN.search(path.read_text(encoding="utf-8")):
                offenders.append(path.name)
        assert not offenders, (
            f"{directory}/ must import repro.api, not the deprecated "
            f"pipeline/driver internals: {offenders}"
        )

    @pytest.mark.parametrize("directory", ["examples", "scripts"])
    def test_pipeline_callers_use_api(self, directory):
        """Any file running the pipeline gets it from repro.api."""
        pattern = re.compile(r"\brun_(?:stream|system|all)\(")
        for path in sorted((REPO / directory).glob("*.py")):
            text = path.read_text(encoding="utf-8")
            if pattern.search(text) and "repro" in text:
                assert re.search(
                    r"from\s+repro(?:\.api)?\s+import\s+.*\bapi\b"
                    r"|from\s+repro\.api\s+import", text,
                ), f"{directory}/{path.name} runs the pipeline but does " \
                   f"not import repro.api"

"""Tests for the Table 1-6 renderers over live pipeline results."""

import pytest

from repro.reporting.tables import (
    all_tables,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)


class TestTable1:
    def test_static_contents(self):
        text = table1()
        assert "Blue Gene/L" in text
        assert "131,072" in text
        assert "Spirit (ICC2)" in text
        assert "Myrinet" in text


class TestTable2:
    def test_measured_and_reference_columns(self, all_results):
        text = table2(all_results)
        assert "Liberty" in text
        assert "Paper Msgs" in text
        assert "272,298,969" in text  # Spirit reference messages

    def test_subset_of_systems(self, liberty_result):
        text = table2({"liberty": liberty_result})
        assert "Liberty" in text
        assert "Blue Gene/L" not in text


class TestTable3:
    def test_three_type_rows(self, all_results):
        text = table3(all_results)
        for label in ("Hardware", "Software", "Indeterminate"):
            assert label in text
        assert "%" in text


class TestTable4:
    def test_per_system_sections_and_categories(self, all_results):
        text = table4(all_results)
        assert "H / KERNDTLB" in text
        assert "I / VAPI" in text
        assert "S / PBS_CHK" in text
        assert "I / 31 Others" in text
        assert "data TLB error interrupt" in text

    def test_full_bgl_listing(self, all_results):
        text = table4(all_results, aggregate_bgl_others=False)
        assert "31 Others" not in text
        assert "KERNPAN" in text

    def test_example_truncation(self, all_results):
        text = table4(all_results, max_example_chars=20)
        assert "..." in text


class TestTable5:
    def test_severity_rows(self, bgl_result):
        text = table5(bgl_result)
        for label in ("FATAL", "FAILURE", "SEVERE", "ERROR", "WARNING",
                      "INFO"):
            assert label in text

    def test_wrong_system_rejected(self, liberty_result):
        with pytest.raises(ValueError, match="BG/L"):
            table5(liberty_result)


class TestTable6:
    def test_syslog_severity_rows(self, redstorm_result):
        text = table6(redstorm_result)
        for label in ("EMERG", "ALERT", "CRIT", "ERR", "NOTICE", "DEBUG"):
            assert label in text

    def test_wrong_system_rejected(self, bgl_result):
        with pytest.raises(ValueError, match="Red Storm"):
            table6(bgl_result)


def test_all_tables_concatenates(all_results):
    text = all_tables(all_results)
    assert "Table 1." in text
    assert "Table 4." in text
    assert "Table 6." in text

"""Tests for the Figure 1-6 renderers over live data."""

import numpy as np

from repro.analysis.interarrival import log_histogram
from repro.analysis.timeseries import bucket_counts, messages_by_source
from repro.logmodel.record import LogRecord
from repro.reporting.figures import (
    figure1,
    figure2a,
    figure2b,
    figure3,
    figure4,
    figure5,
    figure6,
)
from repro.simulation.opcontext import synthesize_timeline

from ..conftest import make_alert


class TestFigure1:
    def test_renders_timeline(self):
        timeline = synthesize_timeline(
            np.random.default_rng(1), 0.0, 200 * 86400.0
        )
        text = figure1(timeline)
        assert "production fraction" in text
        assert "production-uptime" in text

    def test_truncates_long_histories(self):
        timeline = synthesize_timeline(
            np.random.default_rng(2), 0.0, 3650 * 86400.0,
            mean_days_between_outages=5.0,
        )
        text = figure1(timeline, max_intervals=5)
        assert "more intervals" in text


class TestFigure2:
    def test_2a_sparkline_and_shifts(self):
        rng = np.random.default_rng(3)
        values = np.concatenate([rng.poisson(30, 200), rng.poisson(120, 200)])
        times = np.repeat(np.arange(400) * 3600.0, values)
        series = bucket_counts(times, 3600.0)
        text = figure2a(series)
        assert "Messages per hour" in text
        assert "shift at" in text

    def test_2a_quiet_series(self):
        series = bucket_counts(np.arange(0, 100) * 3600.0, 3600.0)
        assert "no phase shifts" in figure2a(series)

    def test_2b_ranked_sources(self):
        records = [
            LogRecord(timestamp=0.0, source=s, facility="f", body="x")
            for s in ["admin"] * 10 + ["n1"] * 2 + ["\x00\x02"]
        ]
        text = figure2b(messages_by_source(records))
        assert text.index("admin") < text.index("n1")
        assert "<corrupted>" in text
        assert "unattributed" in text


class TestFigure3:
    def test_renders_two_rows(self, liberty_result):
        text = figure3(liberty_result.raw_alerts)
        assert "GM_PAR" in text
        assert "GM_LANAI" in text
        assert "coincidences" in text

    def test_empty(self):
        assert "no alerts" in figure3([])


class TestFigure4:
    def test_rows_sorted_by_count(self, liberty_result):
        text = figure4(liberty_result.filtered_alerts)
        assert text.index("PBS_CHK") < text.index("GM_MAP")

    def test_empty(self):
        assert "no alerts" in figure4([])


class TestFigure5:
    def test_renders_cdf_and_fits(self):
        rng = np.random.default_rng(5)
        times = np.cumsum(rng.exponential(3600.0, 150))
        alerts = [make_alert(float(t), category="ECC") for t in times]
        text = figure5(alerts)
        assert "empirical CDF" in text
        assert "best-fitting model" in text
        assert "exponential" in text

    def test_too_few_alerts(self):
        assert "too few" in figure5([make_alert(0.0), make_alert(1.0)])


class TestFigure6:
    def test_reports_modality_per_system(self):
        rng = np.random.default_rng(6)
        bimodal_gaps = np.concatenate(
            [rng.lognormal(1.0, 0.3, 300), rng.lognormal(9.0, 0.3, 100)]
        )
        unimodal_gaps = rng.lognormal(5.0, 0.5, 300)
        text = figure6(
            {
                "bgl": log_histogram(bimodal_gaps),
                "spirit": log_histogram(unimodal_gaps),
            }
        )
        assert "bgl: " in text
        assert "bimodal=True" in text
        assert "bimodal=False" in text

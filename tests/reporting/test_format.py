"""Unit tests for text-rendering primitives."""

from repro.reporting.format import (
    bar,
    format_float,
    format_int,
    format_pct,
    histogram_rows,
    render_table,
    sparkline,
)


class TestNumbers:
    def test_format_int(self):
        assert format_int(1234567) == "1,234,567"

    def test_format_float(self):
        assert format_float(1234.5678) == "1,234.57"
        assert format_float(1.5, digits=0) == "2"

    def test_format_pct(self):
        assert format_pct(98.039) == "98.04%"


class TestBar:
    def test_full_and_empty(self):
        assert bar(10, 10, width=4) == "████"
        assert bar(0, 10) == ""
        assert bar(5, 0) == ""

    def test_proportional(self):
        half = bar(5, 10, width=10)
        assert 4 <= len(half.rstrip()) <= 6

    def test_clamps_overflow(self):
        assert len(bar(100, 10, width=4)) == 4


class TestRenderTable:
    def test_alignment(self):
        text = render_table(
            ("Name", "Count"),
            [("alpha", "10"), ("b", "2,000")],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "Name" in lines[2]
        # Numeric column right-aligned: widths line up.
        assert lines[4].endswith("10")
        assert lines[5].endswith("2,000")

    def test_no_title(self):
        text = render_table(("A",), [("x",)])
        assert text.splitlines()[0] == "A"


class TestSparkline:
    def test_length_capped(self):
        assert len(sparkline(list(range(500)), width=72)) == 72

    def test_short_input(self):
        assert len(sparkline([1, 2, 3], width=72)) == 3

    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_zero(self):
        assert sparkline([0, 0, 0]) == "▁▁▁"

    def test_peak_is_tallest(self):
        line = sparkline([1, 1, 100, 1], width=4)
        assert line[2] == "█"


class TestHistogramRows:
    def test_rows_align_and_count(self):
        rows = histogram_rows(["a", "bb"], [10, 5], width=10)
        assert len(rows) == 2
        assert rows[0].endswith("10")
        assert rows[1].endswith("5")

"""Tests for the full single-system report renderer."""

from repro.api import run_stream
from repro.reporting.report import system_report


class TestSystemReport:
    def test_sections_present(self, liberty_result):
        text = system_report(liberty_result)
        assert "Analysis report: liberty" in text
        assert "Alert categories" in text
        assert "Failure attribution" in text
        assert "Interarrival characterization" in text
        assert "PBS_CHK" in text

    def test_severity_section_for_bgl(self, bgl_result):
        text = system_report(bgl_result)
        assert "Severity distribution" in text
        assert "FATAL" in text

    def test_no_severity_section_for_commodity_syslog(self, liberty_result):
        # Liberty records no severity; the section must be omitted, not
        # rendered empty.
        assert "Severity distribution" not in system_report(liberty_result)

    def test_correlated_groups_reported(self, liberty_result):
        text = system_report(liberty_result)
        assert "GM_LANAI <-> GM_PAR" in text

    def test_empty_log_report(self):
        result = run_stream(iter([]), "liberty")
        text = system_report(result)
        assert "Analysis report: liberty" in text
        assert "Failure attribution" not in text

    def test_redundancy_column(self, spirit_result):
        text = system_report(spirit_result)
        # Spirit's disk categories are >99% redundant.
        assert "99" in text

"""Unit tests for the fault injectors."""

import numpy as np
import pytest

from repro.logmodel.record import LogRecord
from repro.resilience.faults import (
    ClockSkewInjector,
    CollectorCrash,
    CrashInjector,
    DuplicateInjector,
    FaultConfig,
    FaultPlan,
    RandomFaultInjector,
    ReorderInjector,
    StallTimeout,
    TransientFault,
    TruncateInjector,
    compose,
)


def _records(n, start=0.0, step=1.0):
    return [
        LogRecord(
            timestamp=start + k * step, source=f"n{k % 7}",
            facility="kernel", body=f"message number {k} with some payload",
        )
        for k in range(n)
    ]


class TestConfig:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultConfig(duplicate_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(crash_at=-1)

    def test_defaults_are_nonzero(self):
        config = FaultConfig.defaults(seed=3)
        assert config.crash_rate > 0
        assert config.duplicate_rate > 0
        assert config.reorder_rate > 0


class TestDuplicate:
    def test_duplicates_at_rate(self):
        inj = DuplicateInjector(np.random.default_rng(0), rate=0.2)
        out = list(inj.apply(_records(2000)))
        assert len(out) == 2000 + inj.duplicated
        assert 250 < inj.duplicated < 550

    def test_duplicate_is_adjacent_same_record(self):
        inj = DuplicateInjector(np.random.default_rng(0), rate=1.0)
        records = _records(5)
        out = list(inj.apply(records))
        assert out == [r for record in records for r in (record, record)]


class TestReorder:
    def test_produces_out_of_order_delivery(self):
        inj = ReorderInjector(np.random.default_rng(1), rate=0.1, window=4)
        out = list(inj.apply(_records(1000)))
        assert len(out) == 1000  # nothing lost
        times = [r.timestamp for r in out]
        assert times != sorted(times)
        assert inj.reordered > 50

    def test_zero_rate_is_identity(self):
        records = _records(50)
        inj = ReorderInjector(np.random.default_rng(1), rate=0.0)
        assert list(inj.apply(records)) == records


class TestTruncate:
    def test_marks_corrupted_and_shortens(self):
        inj = TruncateInjector(np.random.default_rng(2), rate=1.0)
        records = _records(20)
        out = list(inj.apply(records))
        assert inj.truncated == 20
        for original, damaged in zip(records, out):
            assert damaged.corrupted
            assert len(damaged.body) < len(original.body)
            assert original.body.startswith(damaged.body)


class TestClockSkew:
    def test_episodes_shift_timestamps(self):
        inj = ClockSkewInjector(
            np.random.default_rng(3), rate=0.02, magnitude=100.0, span=10
        )
        records = _records(1000)
        out = list(inj.apply(records))
        assert inj.episodes > 5
        assert inj.skewed_records >= inj.episodes
        moved = [
            (a, b) for a, b in zip(records, out) if a.timestamp != b.timestamp
        ]
        assert len(moved) == inj.skewed_records


class TestCrash:
    def test_crashes_at_exact_index(self):
        inj = CrashInjector(at=100)
        out = []
        with pytest.raises(CollectorCrash) as excinfo:
            for record in inj.apply(_records(500)):
                out.append(record)
        assert len(out) == 100
        assert excinfo.value.records_delivered == 100

    def test_disarms_after_firing(self):
        inj = CrashInjector(at=10)
        with pytest.raises(CollectorCrash):
            list(inj.apply(_records(50)))
        assert inj.fired
        assert len(list(inj.apply(_records(50)))) == 50

    def test_random_faults_continue_across_restarts(self):
        """The countdown persists: a restarted stream does not re-fail at
        the same record, and the fault process stays deterministic."""
        inj = RandomFaultInjector(np.random.default_rng(4), rate=0.01)
        delivered_first = 0
        with pytest.raises(CollectorCrash):
            for _ in inj.apply(_records(10000)):
                delivered_first += 1
        inj2 = RandomFaultInjector(np.random.default_rng(4), rate=0.01)
        delivered_again = 0
        with pytest.raises(CollectorCrash):
            for _ in inj2.apply(_records(10000)):
                delivered_again += 1
        assert delivered_first == delivered_again  # deterministic from seed

        delivered_resumed = 0
        try:
            for _ in inj.apply(_records(10000)):
                delivered_resumed += 1
        except CollectorCrash:
            pass
        assert delivered_resumed != delivered_first or inj.fired_count >= 2

    def test_stall_exception_type(self):
        inj = RandomFaultInjector(
            np.random.default_rng(5), rate=0.5, exception=StallTimeout,
            label="stall",
        )
        with pytest.raises(StallTimeout):
            list(inj.apply(_records(100)))


class TestTransient:
    def test_rate_zero_never_raises(self):
        fault = TransientFault(np.random.default_rng(0), rate=0.0)
        for record in _records(100):
            fault.check(record)
        assert fault.raised == 0

    def test_raises_at_rate(self):
        fault = TransientFault(np.random.default_rng(0), rate=0.3)
        raised = 0
        for record in _records(1000):
            try:
                fault.check(record)
            except StallTimeout:
                raised += 1
        assert raised == fault.raised
        assert 200 < raised < 400


class TestPlan:
    def test_wrap_is_deterministic_across_plans(self):
        """Two plans with the same config mutate the same stream
        identically — the property exact resume depends on."""
        config = FaultConfig(
            seed=9, duplicate_rate=0.05, reorder_rate=0.05,
            truncate_rate=0.05, skew_rate=0.01,
        )
        out_a = list(FaultPlan(config).wrap(_records(2000)))
        out_b = list(FaultPlan(config).wrap(_records(2000)))
        assert [(r.timestamp, r.body) for r in out_a] == [
            (r.timestamp, r.body) for r in out_b
        ]

    def test_rewrap_mutates_identically(self):
        """The same plan re-wrapping the stream (a supervisor restart)
        reproduces the identical mutated prefix."""
        config = FaultConfig(seed=9, duplicate_rate=0.05, truncate_rate=0.05)
        plan = FaultPlan(config)
        first = list(plan.wrap(_records(500)))
        second = list(plan.wrap(_records(500)))
        assert [(r.timestamp, r.body) for r in first] == [
            (r.timestamp, r.body) for r in second
        ]

    def test_planted_crash_fires_once(self):
        plan = FaultPlan(FaultConfig.crash_only(at=50, seed=1))
        with pytest.raises(CollectorCrash):
            list(plan.wrap(_records(200)))
        assert len(list(plan.wrap(_records(200)))) == 200

    def test_compose_chains_in_order(self):
        records = _records(100)
        rng = np.random.default_rng(0)
        out = list(
            compose(
                records,
                DuplicateInjector(rng, rate=0.0),
                TruncateInjector(rng, rate=0.0),
            )
        )
        assert out == records

"""Unit tests for the priority-aware load-shedding policies."""

import pytest

from repro.core.rules import get_ruleset
from repro.core.tagging import Tagger
from repro.logmodel.record import LogRecord
from repro.resilience.backpressure import KEEP, SHED, SPILL, PressureLevel
from repro.resilience.shedding import (
    CLASS_ALERT,
    CLASS_CHATTER,
    CLASS_DUPLICATE,
    SHED_POLICIES,
    ChatterOnlyShedPolicy,
    NoShedPolicy,
    PriorityShedPolicy,
    ShedAccounting,
    get_shed_policy,
)


@pytest.fixture(scope="module")
def tagger():
    return Tagger(get_ruleset("liberty"))


@pytest.fixture(scope="module")
def make_alert_record(tagger):
    """A factory for records some liberty rule verifiably tags."""
    import numpy as np

    rng = np.random.default_rng(7)
    for category in tagger.ruleset:
        candidate = LogRecord(
            timestamp=0.0, source="n1", facility=category.facility,
            body=category.make_body(rng),
        )
        if tagger.match(candidate) is not None:
            def factory(t, _cat=category, _body=candidate.body):
                return LogRecord(timestamp=t, source="n1",
                                 facility=_cat.facility, body=_body)

            return factory
    raise AssertionError("no liberty category matches its own body")


def _record(t, body):
    return LogRecord(timestamp=t, source="n1", facility="kernel", body=body)


class TestClassification:
    def test_chatter_vs_alert(self, tagger, make_alert_record):
        policy = PriorityShedPolicy(dedup_window=5.0).bind(tagger)
        assert policy.classify(_record(0.0, "healthd: uneventful")) \
            == CLASS_CHATTER
        assert policy.classify(make_alert_record(100.0)) == CLASS_ALERT

    def test_repeat_within_window_is_duplicate(self, tagger, make_alert_record):
        policy = PriorityShedPolicy(dedup_window=5.0).bind(tagger)
        assert policy.classify(make_alert_record(0.0)) == CLASS_ALERT
        assert policy.classify(make_alert_record(2.0)) == CLASS_DUPLICATE
        # Beyond the window the category is fresh again.
        assert policy.classify(make_alert_record(20.0)) == CLASS_ALERT

    def test_backwards_timestamp_is_not_duplicate(self, tagger, make_alert_record):
        policy = PriorityShedPolicy(dedup_window=5.0).bind(tagger)
        policy.classify(make_alert_record(10.0))
        assert policy.classify(make_alert_record(3.0)) == CLASS_ALERT

    def test_unbound_policy_is_conservative(self):
        policy = PriorityShedPolicy()
        assert policy.classify(_record(0.0, "anything")) == CLASS_ALERT
        # ...so under pressure nothing is shed, only spilled.
        decision, klass = policy.decide(_record(0.0, "anything"),
                                        PressureLevel.CRITICAL)
        assert decision == SPILL
        assert klass == CLASS_ALERT


class TestPriorityPolicy:
    def test_normal_pressure_keeps_everything(self, tagger, make_alert_record):
        policy = PriorityShedPolicy().bind(tagger)
        for record in (_record(0.0, "chatter line"), make_alert_record(0.0)):
            decision, _ = policy.decide(record, PressureLevel.NORMAL)
            assert decision == KEEP

    def test_elevated_sheds_only_chatter(self, tagger, make_alert_record):
        policy = PriorityShedPolicy().bind(tagger)
        decision, klass = policy.decide(_record(0.0, "chatter"),
                                        PressureLevel.ELEVATED)
        assert (decision, klass) == (SHED, CLASS_CHATTER)
        decision, _ = policy.decide(make_alert_record(1.0),
                                    PressureLevel.ELEVATED)
        assert decision == KEEP

    def test_critical_sheds_duplicates_spills_fresh_alerts(
        self, tagger, make_alert_record
    ):
        policy = PriorityShedPolicy(dedup_window=5.0).bind(tagger)
        decision, klass = policy.decide(make_alert_record(0.0),
                                        PressureLevel.CRITICAL)
        assert (decision, klass) == (SPILL, CLASS_ALERT)
        decision, klass = policy.decide(make_alert_record(1.0),
                                        PressureLevel.CRITICAL)
        assert (decision, klass) == (SHED, CLASS_DUPLICATE)


class TestOtherPolicies:
    def test_chatter_only_never_sheds_tagged(self, tagger, make_alert_record):
        policy = ChatterOnlyShedPolicy(dedup_window=5.0).bind(tagger)
        policy.classify(make_alert_record(0.0))  # prime a duplicate
        decision, klass = policy.decide(make_alert_record(1.0),
                                        PressureLevel.CRITICAL)
        assert decision == SPILL  # duplicates spill, not shed
        assert klass == CLASS_DUPLICATE

    def test_none_policy_only_spills_at_critical(self, tagger):
        policy = NoShedPolicy().bind(tagger)
        decision, _ = policy.decide(_record(0.0, "chatter"),
                                    PressureLevel.ELEVATED)
        assert decision == KEEP
        decision, _ = policy.decide(_record(0.0, "chatter"),
                                    PressureLevel.CRITICAL)
        assert decision == SPILL


class TestRegistry:
    def test_known_names(self):
        assert set(SHED_POLICIES) == {"priority", "chatter-only", "none"}
        for name in SHED_POLICIES:
            assert get_shed_policy(name).name == name

    def test_dedup_window_passthrough(self):
        assert get_shed_policy("priority", dedup_window=9.0).dedup_window == 9.0

    def test_instance_passthrough(self):
        policy = PriorityShedPolicy()
        assert get_shed_policy(policy) is policy

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown shed policy"):
            get_shed_policy("yolo")


class TestAccounting:
    def test_conservation_identity(self):
        accounting = ShedAccounting()
        for _ in range(5):
            accounting.count_offered(CLASS_CHATTER)
        accounting.count_shed(CLASS_CHATTER)
        accounting.count_offered(CLASS_ALERT)
        accounting.count_spilled(CLASS_ALERT)
        assert accounting.total_offered == 6
        assert accounting.admitted == 4
        assert "shed" in accounting.summary()

    def test_empty_summary(self):
        assert ShedAccounting().summary() == "nothing shed"

"""Unit tests for bounded queues, credits, the monitor, bounded_buffer."""

import pytest

from repro.resilience.backpressure import (
    BackpressureConfig,
    BoundedQueue,
    CreditGate,
    OverloadMonitor,
    OverloadReport,
    PressureLevel,
    Watermarks,
    bounded_buffer,
)
from repro.resilience.deadletter import DeadLetterQueue
from repro.resilience.shedding import CLASS_ALERT, ShedAccounting
from repro.logmodel.record import LogRecord


def _record(t=1.0, body="x"):
    return LogRecord(timestamp=t, source="n1", facility="kernel", body=body)


class TestWatermarks:
    def test_for_capacity_defaults(self):
        wm = Watermarks.for_capacity(100)
        assert wm.high == 80
        assert wm.low == 50

    def test_tiny_capacity_stays_ordered(self):
        wm = Watermarks.for_capacity(1)
        assert 0 <= wm.low < wm.high <= 1

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            Watermarks(high=5, low=5)
        with pytest.raises(ValueError):
            Watermarks(high=5, low=-1)


class TestBoundedQueue:
    def test_put_get_fifo_and_counters(self):
        q = BoundedQueue("q", capacity=4)
        assert q.put("a") and q.put("b")
        assert q.get() == "a"
        assert q.total_in == 2
        assert q.total_out == 1
        assert q.peak_occupancy == 2

    def test_full_queue_refuses_instead_of_evicting(self):
        q = BoundedQueue("q", capacity=2)
        assert q.put(1) and q.put(2)
        assert not q.put(3)
        assert q.refused == 1
        assert [q.get(), q.get()] == [1, 2]  # nothing was evicted

    def test_pressure_hysteresis(self):
        q = BoundedQueue("q", capacity=10, watermarks=Watermarks(high=8, low=4))
        for k in range(8):
            q.put(k)
        assert q.pressure() is PressureLevel.ELEVATED
        q.get()  # 7: between low and high -> stays elevated
        assert q.pressure() is PressureLevel.ELEVATED
        for _ in range(3):
            q.get()  # down to 4 = low watermark
        assert q.pressure() is PressureLevel.NORMAL
        for k in range(6):
            q.put(k)  # back to capacity
        assert q.pressure() is PressureLevel.CRITICAL

    def test_credits_are_headroom_below_high_watermark(self):
        q = BoundedQueue("q", capacity=10, watermarks=Watermarks(high=8, low=4))
        assert q.credits() == 8
        for k in range(6):
            q.put(k)
        assert q.credits() == 2
        for k in range(4):
            q.put(k)
        assert q.credits() == 0


class TestCreditGate:
    def test_grants_bounded_by_headroom(self):
        q = BoundedQueue("q", capacity=10, watermarks=Watermarks(high=8, low=4))
        gate = CreditGate(q)
        assert gate.acquire(5) == 5
        for k in range(5):
            q.put(k)
        assert gate.acquire(5) == 3  # only 3 slots below high remain
        assert gate.requested == 10
        assert gate.granted == 8
        assert gate.withheld == 2


class TestOverloadMonitor:
    def test_sustain_latches_after_consecutive_overload(self):
        monitor = OverloadMonitor(sustain=3)
        q = monitor.attach(BoundedQueue("q", capacity=4,
                                        watermarks=Watermarks(high=2, low=1)))
        q.put(1), q.put(2)
        assert monitor.sample() is PressureLevel.ELEVATED
        assert monitor.sample() is PressureLevel.ELEVATED
        assert not monitor.sustained_overload
        monitor.sample()
        assert monitor.sustained_overload
        assert monitor.overloaded_samples == 3
        assert monitor.events

    def test_normal_sample_resets_the_streak(self):
        monitor = OverloadMonitor(sustain=2)
        q = monitor.attach(BoundedQueue("q", capacity=4,
                                        watermarks=Watermarks(high=2, low=1)))
        q.put(1), q.put(2)
        monitor.sample()
        q.get()  # drain to low watermark -> NORMAL
        assert monitor.sample() is PressureLevel.NORMAL
        q.put(2)
        monitor.sample()
        assert not monitor.sustained_overload  # streak restarted

    def test_peaks_are_exact_not_sampled(self):
        monitor = OverloadMonitor()
        q = monitor.attach(BoundedQueue("q", capacity=8))
        for k in range(6):
            q.put(k)
        while q:
            q.get()
        monitor.sample()  # queue empty now, but peak was 6
        assert monitor.peak_by_queue["q"] == 6

    def test_peaks_survive_reattach(self):
        monitor = OverloadMonitor()
        q1 = monitor.attach(BoundedQueue("q", capacity=8))
        for k in range(5):
            q1.put(k)
        monitor.sample()
        monitor.attach(BoundedQueue("q", capacity=8))  # supervisor restart
        monitor.sample()
        assert monitor.peak_by_queue["q"] == 5


class TestBoundedBuffer:
    def test_pausable_source_loses_nothing(self):
        q = BoundedQueue("q", capacity=8)
        out = list(bounded_buffer(range(100), q, chunk=16, pausable=True))
        assert out == list(range(100))
        assert q.refused == 0
        assert q.peak_occupancy <= q.watermarks.high

    def test_unpausable_overflow_spills_with_accounting(self):
        q = BoundedQueue("q", capacity=4)
        accounting = ShedAccounting()
        dlq = DeadLetterQueue()
        records = [_record(t=float(k)) for k in range(50)]
        out = list(bounded_buffer(records, q, chunk=20, pausable=False,
                                  accounting=accounting, dead_letters=dlq))
        # Everything is either delivered or spilled with a count: no
        # silent loss, and the buffer never exceeded its bound.
        assert len(out) + accounting.total_spilled == 50
        assert dlq.quarantined == accounting.total_spilled > 0
        assert q.peak_occupancy <= q.capacity

    def test_policy_decisions_are_consulted(self):
        class ShedEverything:
            def decide(self, record, level):
                return "shed", CLASS_ALERT

        q = BoundedQueue("q", capacity=4)
        accounting = ShedAccounting()
        out = list(bounded_buffer(range(10), q, chunk=4, pausable=False,
                                  policy=ShedEverything(),
                                  accounting=accounting))
        assert out == []
        assert accounting.total_shed == 10

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            list(bounded_buffer([], BoundedQueue("q", 4), chunk=0))


class TestBackpressureConfig:
    def test_burst_arrival_outpaces_service(self):
        cfg = BackpressureConfig.burst(factor=10.0, service_batch=32)
        assert cfg.arrival_batch == 320
        assert not cfg.source_pausable

    def test_validation(self):
        with pytest.raises(ValueError):
            BackpressureConfig(max_buffer=0)
        with pytest.raises(ValueError):
            BackpressureConfig(high_fraction=0.4, low_fraction=0.5)
        with pytest.raises(ValueError):
            BackpressureConfig(degrade_threshold_factor=0.5)
        with pytest.raises(ValueError):
            BackpressureConfig.burst(factor=0.5)

    def test_with_runtime_preserves_other_fields(self):
        cfg = BackpressureConfig(max_buffer=77)
        monitor, accounting = OverloadMonitor(), ShedAccounting()
        bound = cfg.with_runtime(monitor=monitor, accounting=accounting)
        assert bound.max_buffer == 77
        assert bound.monitor is monitor
        assert bound.accounting is accounting


class TestOverloadReport:
    def test_from_parts_and_summary(self):
        monitor = OverloadMonitor(sustain=1)
        q = monitor.attach(BoundedQueue("ingest", capacity=4,
                                        watermarks=Watermarks(high=2, low=1)))
        q.put(1), q.put(2)
        monitor.sample()
        accounting = ShedAccounting()
        accounting.count_offered("info-chatter")
        accounting.count_shed("info-chatter")
        accounting.count_spilled("tagged-alert")
        gate = CreditGate(q)
        gate.acquire(5)
        report = OverloadReport.from_parts(monitor=monitor,
                                           accounting=accounting,
                                           gate=gate, degraded=True)
        assert report.queue_peaks["ingest"] == 2
        assert report.total_shed == 1
        assert report.total_spilled == 1
        assert report.sustained_overload
        text = "\n".join(report.summary_lines())
        assert "ingest 2/4" in text
        assert "shed" in text and "spilled" in text
        assert "degraded" in text

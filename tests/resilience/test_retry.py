"""Unit tests for retry policies, circuit breaking, and ResilientChannel."""

import numpy as np
import pytest

from repro.logmodel.record import LogRecord
from repro.resilience.deadletter import DeadLetterQueue
from repro.resilience.faults import StallTimeout, TransientFault
from repro.resilience.retry import (
    BreakerState,
    CircuitBreaker,
    ResilientChannel,
    RetryError,
    RetryPolicy,
    with_retry,
)
from repro.simulation.transport import TcpRasChannel, UdpSyslogChannel


def _records(times):
    return [
        LogRecord(timestamp=t, source="n1", facility="kernel", body="x")
        for t in times
    ]


class TestPolicy:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0,
                             jitter=0.0)
        assert policy.delay(0) == 1.0
        assert policy.delay(1) == 2.0
        assert policy.delay(2) == 4.0
        assert policy.delay(3) == 5.0  # capped

    def test_jitter_shrinks_delay_deterministically(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        rng = np.random.default_rng(0)
        delays = {policy.delay(0, rng) for _ in range(10)}
        assert all(0.5 <= d <= 1.0 for d in delays)
        assert len(delays) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


class TestWithRetry:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise StallTimeout("transient")
            return "ok"

        backoffs = []
        result = with_retry(
            flaky, RetryPolicy(max_attempts=4, jitter=0.0),
            on_backoff=lambda attempt, delay: backoffs.append(delay),
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert len(backoffs) == 2

    def test_exhaustion_raises_retry_error(self):
        def always_fails():
            raise StallTimeout("down")

        with pytest.raises(RetryError) as excinfo:
            with_retry(always_fails, RetryPolicy(max_attempts=3))
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, StallTimeout)

    def test_non_retryable_propagates_untouched(self):
        def bug():
            raise KeyError("not a fault")

        with pytest.raises(KeyError):
            with_retry(bug, RetryPolicy())


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0)
        for _ in range(3):
            assert breaker.allow(0.0)
            breaker.record_failure(0.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(5.0)
        assert breaker.rejected == 1

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(9.0)
        assert breaker.allow(10.0)  # probe
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.record_failure(10.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(15.0)
        assert breaker.allow(20.0)


class TestResilientChannel:
    def test_all_records_delivered_despite_transient_faults(self):
        """A 30% per-attempt send failure is absorbed entirely by
        retries over a reliable channel: nothing is lost."""
        fault = TransientFault(np.random.default_rng(0), rate=0.3)
        channel = ResilientChannel(
            TcpRasChannel(),
            RetryPolicy(max_attempts=10, jitter=0.0),
            faults=fault,
        )
        records = _records(np.arange(0, 200, 1.0))
        delivered = list(channel.transmit(records))
        assert len(delivered) == len(records)
        assert channel.retries > 0
        assert channel.total_backoff > 0
        assert fault.raised == channel.retries

    def test_exhausted_retries_dead_letter_not_raise(self):
        fault = TransientFault(np.random.default_rng(0), rate=1.0)
        dlq = DeadLetterQueue()
        channel = ResilientChannel(
            TcpRasChannel(), RetryPolicy(max_attempts=2),
            faults=fault, dead_letters=dlq,
        )
        delivered = list(channel.transmit(_records([1.0, 2.0, 3.0])))
        assert delivered == []
        assert channel.failed == 3
        assert dlq.by_reason == {"retries-exhausted": 3}

    def test_breaker_stops_offering_to_dead_channel(self):
        fault = TransientFault(np.random.default_rng(0), rate=1.0)
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=1000.0)
        channel = ResilientChannel(
            TcpRasChannel(), RetryPolicy(max_attempts=2),
            breaker=breaker, faults=fault,
        )
        # 10 records over 10 seconds: after 2 failures the breaker opens
        # and the remaining 8 are rejected without touching the channel.
        list(channel.transmit(_records(np.arange(0, 10, 1.0))))
        assert channel.failed == 2
        assert channel.rejected == 8
        assert breaker.state is BreakerState.OPEN

    def test_breaker_recovers_when_channel_heals(self):
        fault = TransientFault(np.random.default_rng(0), rate=1.0)
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0)
        channel = ResilientChannel(
            TcpRasChannel(), RetryPolicy(max_attempts=1),
            breaker=breaker, faults=fault,
        )
        assert list(channel.transmit(_records([0.0]))) == []
        fault.rate = 0.0  # channel heals
        assert list(channel.transmit(_records([1.0]))) == []  # still open
        out = list(channel.transmit(_records([6.0])))  # probe succeeds
        assert len(out) == 1
        assert breaker.state is BreakerState.CLOSED

    def test_udp_drops_are_not_retried(self):
        """Channel loss is modeled behavior, not failure: the retry layer
        must not resurrect records the lossy channel dropped."""
        udp = UdpSyslogChannel(
            np.random.default_rng(1), base_loss=1.0, congestion_loss=0.0
        )
        channel = ResilientChannel(udp, RetryPolicy(max_attempts=5))
        delivered = list(channel.transmit(_records([1.0, 2.0])))
        assert delivered == []
        assert channel.retries == 0
        assert udp.sent == 2
        assert udp.dropped == 2

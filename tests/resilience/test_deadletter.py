"""Unit tests for the dead-letter quarantine."""

import pytest

from repro.logmodel.record import LogRecord
from repro.resilience.deadletter import DeadLetterQueue


def _record(t=1.0, body="x"):
    return LogRecord(timestamp=t, source="n1", facility="kernel", body=body)


class TestQueue:
    def test_put_and_counters(self):
        dlq = DeadLetterQueue()
        dlq.put(_record(), "bad-parse")
        dlq.put(_record(), "bad-parse", detail="line 7")
        dlq.put(_record(), "out-of-order")
        assert dlq.quarantined == 3
        assert len(dlq) == 3
        assert dlq.by_reason == {"bad-parse": 2, "out-of-order": 1}
        assert len(dlq.letters_for("bad-parse")) == 2

    def test_capacity_bounds_retention_not_counts(self):
        dlq = DeadLetterQueue(capacity=5)
        for k in range(12):
            dlq.put(_record(t=float(k)), "overflow-test")
        assert len(dlq) == 5
        assert dlq.quarantined == 12
        assert dlq.evicted == 7
        retained = [letter.record.timestamp for letter in dlq]
        assert retained == [7.0, 8.0, 9.0, 10.0, 11.0]  # newest kept

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DeadLetterQueue(capacity=0)

    def test_summary_text(self):
        dlq = DeadLetterQueue()
        assert dlq.summary() == "0 quarantined"
        dlq.put(_record(), "b-reason")
        dlq.put(_record(), "a-reason")
        assert dlq.summary() == "2 quarantined (a-reason: 1, b-reason: 1)"


class TestSnapshot:
    def test_snapshot_is_isolated_from_later_puts(self):
        dlq = DeadLetterQueue()
        dlq.put(_record(1.0), "early")
        snap = dlq.snapshot()
        dlq.put(_record(2.0), "late")
        assert snap.quarantined == 1
        assert dict(snap.by_reason) == {"early": 1}

    def test_restore_rewinds_to_snapshot(self):
        dlq = DeadLetterQueue()
        dlq.put(_record(1.0), "early")
        snap = dlq.snapshot()
        dlq.put(_record(2.0), "late")
        dlq.restore(snap)
        assert dlq.quarantined == 1
        assert dlq.by_reason == {"early": 1}
        assert [letter.reason for letter in dlq] == ["early"]

    def test_restore_none_resets_empty(self):
        dlq = DeadLetterQueue()
        dlq.put(_record(), "x")
        dlq.restore(None)
        assert dlq.quarantined == 0
        assert len(dlq) == 0
        assert dlq.by_reason == {}

    def test_one_snapshot_supports_many_restores(self):
        dlq = DeadLetterQueue()
        dlq.put(_record(), "keep")
        snap = dlq.snapshot()
        for _ in range(3):
            dlq.put(_record(), "noise")
            dlq.restore(snap)
        assert dlq.quarantined == 1
        assert dlq.by_reason == {"keep": 1}


class TestEvictionAccounting:
    def test_evictions_counted_per_reason(self):
        dlq = DeadLetterQueue(capacity=3)
        for k in range(3):
            dlq.put(_record(t=float(k)), "first-wave")
        for k in range(2):
            dlq.put(_record(t=float(10 + k)), "second-wave")
        # The two oldest first-wave letters were pushed out, by reason.
        assert dlq.evicted == 2
        assert dlq.evicted_counts == {"first-wave": 2}
        dlq.put(_record(t=20.0), "third-wave")
        assert dlq.evicted_counts == {"first-wave": 3}

    def test_eviction_counts_survive_snapshot_round_trip(self):
        dlq = DeadLetterQueue(capacity=2)
        for k in range(5):
            dlq.put(_record(t=float(k)), "noise")
        snap = dlq.snapshot()
        assert dict(snap.evicted_counts) == {"noise": 3}
        fresh = DeadLetterQueue(capacity=2)
        fresh.restore(snap)
        assert fresh.evicted == 3
        assert fresh.evicted_counts == {"noise": 3}
        fresh.restore(None)
        assert fresh.evicted_counts == {}

    def test_summary_reports_evictions(self):
        dlq = DeadLetterQueue(capacity=1)
        dlq.put(_record(), "a-reason")
        dlq.put(_record(), "b-reason")
        text = dlq.summary()
        assert "2 quarantined" in text
        assert "1 letters evicted (a-reason: 1)" in text

    def test_no_eviction_line_when_nothing_evicted(self):
        dlq = DeadLetterQueue()
        dlq.put(_record(), "x")
        assert "evicted" not in dlq.summary()

"""Thread/task-safety of the shared resilience primitives.

The ingest service interleaves many tenant tasks (and the stats server,
and tests' helper threads) over :class:`DeadLetterQueue`,
:class:`ShedPolicy`, and :class:`ShedAccounting`.  Conservation
accounting is only meaningful if these counters stay exact under that
interleaving — so these tests hammer them from real threads (a strictly
stronger schedule than asyncio task interleaving) and assert the counts
partition perfectly.
"""

import threading

from repro.core.rules import get_ruleset
from repro.core.tagging import Tagger
from repro.logmodel.record import LogRecord
from repro.resilience.backpressure import KEEP, SHED, SPILL, PressureLevel
from repro.resilience.deadletter import DeadLetterQueue
from repro.resilience.shedding import ShedAccounting, get_shed_policy

THREADS = 8
PER_THREAD = 2000


def run_threads(target):
    threads = [
        threading.Thread(target=target, args=(i,)) for i in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def make_record(i):
    return LogRecord(
        timestamp=float(i), source=f"n{i % 7}", facility="kernel",
        body=f"message {i}", system="liberty",
    )


class TestDeadLetterQueueConcurrency:
    def test_counters_exact_under_concurrent_puts_with_eviction(self):
        """Eviction churn from many threads: quarantined, by_reason, and
        evicted_counts stay an exact partition."""
        queue = DeadLetterQueue(capacity=64)
        reasons = ("alpha", "beta", "gamma")

        def worker(tid):
            for i in range(PER_THREAD):
                queue.put(make_record(i), reasons[(tid + i) % 3])

        run_threads(worker)
        total = THREADS * PER_THREAD
        assert queue.quarantined == total
        assert sum(queue.by_reason.values()) == total
        assert queue.evicted == total - queue.capacity
        assert sum(queue.evicted_counts.values()) == queue.evicted
        assert len(queue) == queue.capacity
        # Retained letters + evicted letters == everything quarantined.
        retained_by_reason = {}
        for letter in queue:
            retained_by_reason[letter.reason] = (
                retained_by_reason.get(letter.reason, 0) + 1
            )
        for reason in reasons:
            assert (
                retained_by_reason.get(reason, 0)
                + queue.evicted_counts.get(reason, 0)
                == queue.by_reason[reason]
            )

    def test_snapshots_are_internally_consistent_mid_hammer(self):
        """A snapshot taken while writers run must be *some* consistent
        state, never a torn one (letters/quarantined/evicted agreeing)."""
        queue = DeadLetterQueue(capacity=32)
        stop = threading.Event()
        torn = []

        def writer(tid):
            for i in range(PER_THREAD):
                queue.put(make_record(i), f"r{tid % 2}")
            stop.set()

        def observer():
            while not stop.is_set():
                snap = queue.snapshot()
                if (
                    snap.quarantined - snap.evicted != len(snap.letters)
                    or sum(dict(snap.by_reason).values()) != snap.quarantined
                    or sum(dict(snap.evicted_counts).values()) != snap.evicted
                ):
                    torn.append(snap)

        watcher = threading.Thread(target=observer)
        watcher.start()
        run_threads(writer)
        watcher.join()
        assert not torn

    def test_restore_during_puts_leaves_consistent_state(self):
        queue = DeadLetterQueue(capacity=16)
        base = queue.snapshot()

        def writer(tid):
            for i in range(200):
                queue.put(make_record(i), "x")

        def restorer(tid):
            for _ in range(50):
                queue.restore(base)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(4)]
        threads += [threading.Thread(target=restorer, args=(i,))
                    for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = queue.snapshot()
        assert snap.quarantined - snap.evicted == len(snap.letters)
        assert sum(dict(snap.by_reason).values()) == snap.quarantined


class TestShedPolicyConcurrency:
    def test_decide_is_safe_and_total_under_concurrent_tenants(self):
        """Many threads sharing one policy: every decision is a valid
        verb and nothing raises; duplicate state stays a sane dict."""
        tagger = Tagger(get_ruleset("liberty"))
        policy = get_shed_policy("priority", dedup_window=5.0).bind(tagger)
        decisions = [[] for _ in range(THREADS)]

        def worker(tid):
            for i in range(PER_THREAD):
                record = make_record(tid * PER_THREAD + i)
                level = PressureLevel(i % 3)
                decisions[tid].append(policy.decide(record, level)[0])

        run_threads(worker)
        flat = [d for sub in decisions for d in sub]
        assert len(flat) == THREADS * PER_THREAD
        assert set(flat) <= {KEEP, SHED, SPILL}
        state = policy.state_dict()
        assert all(isinstance(v, float) for v in state.values())

    def test_state_dict_round_trip_during_decides(self):
        tagger = Tagger(get_ruleset("liberty"))
        policy = get_shed_policy("priority", dedup_window=5.0).bind(tagger)
        stop = threading.Event()
        errors = []

        def decider(tid):
            for i in range(PER_THREAD):
                policy.decide(make_record(i), PressureLevel.CRITICAL)
            stop.set()

        def checkpointer():
            while not stop.is_set():
                try:
                    policy.load_state_dict(policy.state_dict())
                except Exception as exc:  # pragma: no cover - the bug
                    errors.append(exc)

        watcher = threading.Thread(target=checkpointer)
        watcher.start()
        run_threads(decider)
        watcher.join()
        assert not errors


class TestShedAccountingConcurrency:
    def test_counters_partition_exactly(self):
        accounting = ShedAccounting()

        def worker(tid):
            for i in range(PER_THREAD):
                klass = ("a", "b", "c")[i % 3]
                accounting.count_offered(klass)
                if i % 5 == 0:
                    accounting.count_shed(klass)
                elif i % 5 == 1:
                    accounting.count_spilled(klass)

        run_threads(worker)
        total = THREADS * PER_THREAD
        assert accounting.total_offered == total
        assert accounting.total_shed == sum(
            1 for i in range(PER_THREAD) if i % 5 == 0
        ) * THREADS
        assert accounting.total_spilled == sum(
            1 for i in range(PER_THREAD) if i % 5 == 1
        ) * THREADS
        assert (
            accounting.admitted
            == total - accounting.total_shed - accounting.total_spilled
        )

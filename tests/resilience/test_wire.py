"""Property suite for the durable on-disk format.

The wire module's contract is *total*: any byte sequence — torn, flipped,
or hostile — must scan to a clean verified prefix plus an explanation,
never an exception or a misparsed frame; and any real pipeline state must
survive the encode/decode round trip exactly.  Hypothesis drives both
directions: random frame soup for the scanner, and random record streams
(including lone-surrogate match text, mirroring
``tests/parallel/test_boundary.py``) through a real
:class:`~repro.engine.path.AlertPath` for every paper ruleset, so the
checkpoints that cross the format carry genuine stats, filter, shed, and
dead-letter state.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.core.tagging import RulesetHandle  # noqa: E402
from repro.engine.path import AlertPath  # noqa: E402
from repro.logmodel.record import LogRecord  # noqa: E402
from repro.resilience import wire  # noqa: E402
from repro.resilience.deadletter import DeadLetterQueue  # noqa: E402
from repro.systems.specs import SYSTEMS  # noqa: E402

COMMON = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,  # CI stability: same examples every run
)

#: Lone surrogates — what corruption plants in bodies; strict utf-8
#: paths raise on them, so they must survive pickling and matching.
SURROGATE_TEXT = st.sampled_from([
    "\ud800", "\udfff", "before \ud800 after", "pair 😀 halves",
])

BODY = st.one_of(
    st.text(max_size=32),
    SURROGATE_TEXT,
    st.just(""),
)


# ---------------------------------------------------------------------------
# frames: total scanning over arbitrary damage
# ---------------------------------------------------------------------------


class TestFrames:
    @COMMON
    @given(payloads=st.lists(st.binary(max_size=128), max_size=8))
    def test_round_trip(self, payloads):
        data = wire.file_header(wire.WAL_MAGIC) + b"".join(
            wire.encode_frame(p) for p in payloads
        )
        scanned, end, error = wire.scan_frames(data)
        assert error is None
        assert end == len(data)
        assert scanned == payloads

    @COMMON
    @given(
        payloads=st.lists(st.binary(max_size=64), min_size=1, max_size=6),
        data=st.data(),
    )
    def test_truncation_yields_clean_prefix(self, payloads, data):
        """Cutting the file anywhere loses at most the torn frame —
        everything scanned before it is intact and in order."""
        blob = wire.file_header(wire.WAL_MAGIC) + b"".join(
            wire.encode_frame(p) for p in payloads
        )
        cut = data.draw(
            st.integers(wire.HEADER_SIZE, len(blob)), label="cut"
        )
        scanned, end, error = wire.scan_frames(blob[:cut])
        assert scanned == payloads[:len(scanned)]
        assert end <= cut
        if cut == len(blob):
            assert error is None and scanned == payloads
        elif error is None:
            # A cut that looks clean must land exactly on a frame edge.
            assert end == cut

    @COMMON
    @given(
        payloads=st.lists(st.binary(max_size=64), min_size=1, max_size=6),
        data=st.data(),
    )
    def test_bit_flip_never_passes_verification(self, payloads, data):
        """Any single flipped byte in the frame region stops the scan at
        (or before) the damaged frame — never an exception, never a
        reordered or invented payload."""
        blob = wire.file_header(wire.WAL_MAGIC) + b"".join(
            wire.encode_frame(p) for p in payloads
        )
        index = data.draw(
            st.integers(wire.HEADER_SIZE, len(blob) - 1), label="index"
        )
        damaged = (
            blob[:index] + bytes((blob[index] ^ 0xFF,)) + blob[index + 1:]
        )
        scanned, _end, error = wire.scan_frames(damaged)
        assert error is not None
        assert scanned == payloads[:len(scanned)]

    def test_implausible_length_is_rejected_not_slurped(self):
        frame = wire.encode_frame(b"x")
        # Forge the length field far past MAX_FRAME_PAYLOAD.
        forged = frame[:4] + (2**32 - 1).to_bytes(4, "little") + frame[8:]
        scanned, _end, error = wire.scan_frames(
            wire.file_header(wire.WAL_MAGIC) + forged
        )
        assert scanned == []
        assert "implausible" in error

    def test_header_magic_and_version_enforced(self):
        good = wire.file_header(wire.WAL_MAGIC)
        wire.check_header(good, wire.WAL_MAGIC)
        with pytest.raises(wire.WireError):
            wire.check_header(good, wire.CHECKPOINT_MAGIC)
        with pytest.raises(wire.WireError):
            wire.check_header(good[:3], wire.WAL_MAGIC)
        bad_version = good[:4] + b"\x63\x00"
        with pytest.raises(wire.WireError):
            wire.check_header(bad_version, wire.WAL_MAGIC)


class TestEntries:
    @COMMON
    @given(
        kind=st.sampled_from(["alert", "letter", "counters", "checkpoint"]),
        obj=st.recursive(
            st.one_of(st.integers(), st.floats(allow_nan=False), BODY,
                      st.booleans(), st.none()),
            lambda inner: st.one_of(
                st.lists(inner, max_size=4),
                st.dictionaries(st.text(max_size=8), inner, max_size=4),
            ),
            max_leaves=12,
        ),
    )
    def test_round_trip(self, kind, obj):
        decoded_kind, decoded_obj = wire.decode_entry(
            wire.scan_frames(
                wire.file_header(wire.WAL_MAGIC)
                + wire.encode_entry(kind, obj)
            )[0][0]
        )
        assert decoded_kind == kind
        assert decoded_obj == obj

    def test_non_string_kind_rejected(self):
        frame = wire.encode_frame(
            __import__("pickle").dumps((42, "payload"))
        )
        payload = wire.scan_frames(
            wire.file_header(wire.WAL_MAGIC) + frame
        )[0][0]
        with pytest.raises(wire.WireError):
            wire.decode_entry(payload)


# ---------------------------------------------------------------------------
# checkpoints: real pipeline state through the format, every ruleset
# ---------------------------------------------------------------------------


def _examples(system):
    return [c.example for c in RulesetHandle(system).resolve() if c.example]


@st.composite
def record_streams(draw, system):
    """A short stream mixing genuinely taggable lines (ruleset examples),
    hypothesis noise (including lone surrogates), corrupted records, and
    timestamp regressions — so the snapshotted path carries alerts, dead
    letters, and filter state, not just zeros."""
    examples = _examples(system)
    n = draw(st.integers(3, 30))
    records, timestamp = [], 1000.0
    for i in range(n):
        step = draw(st.floats(-400.0, 30.0, allow_nan=False))
        timestamp += step
        kind = draw(st.integers(0, 3))
        if kind == 0 and examples:
            body = examples[i % len(examples)]
        else:
            body = draw(BODY)
        records.append(LogRecord(
            timestamp=timestamp,
            source=f"node-{i % 3}",
            facility=draw(st.sampled_from(["", "kernel"])),
            body=body,
            corrupted=draw(st.integers(0, 9)) == 0,
            system=system,
        ))
    return records


@pytest.mark.parametrize("system", sorted(SYSTEMS))
class TestCheckpointRoundTrip:
    @COMMON
    @given(data=st.data())
    def test_snapshot_survives_the_wire(self, system, data):
        records = data.draw(record_streams(system), label="records")
        path = AlertPath(
            system, dead_letters=DeadLetterQueue(capacity=len(records) + 1)
        )
        for record in records:
            if path.admit(record):
                path.process(record)
        checkpoint = dc_replace(
            path.snapshot(),
            # Exercise the bounded-run shed-memory field too.
            shed_state=data.draw(st.dictionaries(
                st.text(max_size=12), st.floats(allow_nan=False),
                max_size=4,
            ), label="shed_state"),
        )

        blob = wire.file_header(wire.CHECKPOINT_MAGIC) + \
            wire.encode_checkpoint(checkpoint, {"token": "prop", "gen": 3})
        wire.check_header(blob, wire.CHECKPOINT_MAGIC)
        payloads, end, error = wire.scan_frames(blob)
        assert error is None and len(payloads) == 1 and end == len(blob)
        restored, meta = wire.decode_checkpoint(payloads[0])

        assert meta == {"token": "prop", "gen": 3}
        assert restored.system == checkpoint.system
        assert restored.records_consumed == checkpoint.records_consumed
        assert restored.raw_alerts == checkpoint.raw_alerts
        assert restored.filtered_alerts == checkpoint.filtered_alerts
        assert restored.report == checkpoint.report
        assert restored.severity == checkpoint.severity
        assert restored.corrupted_messages == checkpoint.corrupted_messages
        assert restored.dead_letters == checkpoint.dead_letters
        assert restored.shed_state == checkpoint.shed_state
        assert restored.filter_state == checkpoint.filter_state
        # The durable twin drops the live compressor but keeps its
        # fed-bytes watermark and the volume statistics byte-for-byte.
        assert restored.stats.compressor is None
        assert restored.stats.fed_bytes == checkpoint.stats.fed_bytes
        assert restored.stats.stats == checkpoint.stats.stats

    @COMMON
    @given(data=st.data())
    def test_restored_state_is_live_again(self, system, data):
        """The decoded checkpoint rebuilds working collaborators — the
        filter continues from its state and the report copies deeply."""
        records = data.draw(record_streams(system), label="records")
        path = AlertPath(
            system, dead_letters=DeadLetterQueue(capacity=len(records) + 1)
        )
        for record in records:
            if path.admit(record):
                path.process(record)
        blob = wire.encode_checkpoint(path.snapshot(), {})
        restored, _meta = wire.decode_checkpoint(
            wire.scan_frames(
                wire.file_header(wire.CHECKPOINT_MAGIC) + blob
            )[0][0]
        )
        stf = restored.restore_filter()
        assert stf.state_dict() == restored.filter_state
        report = restored.restore_report()
        assert report == restored.report
        report.by_category["__mutated__"] = [1, 1]
        assert "__mutated__" not in restored.report.by_category


def test_checkpoint_payload_type_enforced():
    frame = wire.encode_frame(
        __import__("pickle").dumps({"meta": {}, "checkpoint": "not one"})
    )
    payload = wire.scan_frames(
        wire.file_header(wire.CHECKPOINT_MAGIC) + frame
    )[0][0]
    with pytest.raises(wire.WireError):
        wire.decode_checkpoint(payload)


def test_manifest_round_trip_and_rejection():
    fields = {"token": "t", "generation": 7, "complete": False}
    assert wire.decode_manifest(wire.encode_manifest(fields)) == fields
    with pytest.raises(wire.WireError):
        wire.decode_manifest(wire.encode_manifest(fields)[:-3])

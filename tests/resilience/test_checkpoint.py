"""Checkpoint/resume: interrupted runs must land byte-identical."""

import pytest

from repro import api as pipeline
from repro.core.filtering import SpatioTemporalFilter
from repro.logio.stats import StatsCollector
from repro.resilience.checkpoint import CheckpointManager, PipelineCheckpoint
from repro.resilience.deadletter import DeadLetterQueue
from repro.resilience.faults import CollectorCrash, FaultConfig, FaultPlan
from repro.simulation.generator import generate_log

from ..conftest import SEED, SMALL_SCALE, make_alert


class TestFilterState:
    def test_state_roundtrip_matches_uninterrupted(self):
        alerts = [make_alert(t, category="C" if t % 2 else "D")
                  for t in range(0, 50)]
        straight = SpatioTemporalFilter(5.0)
        kept_straight = [straight.offer(a) for a in alerts]

        first = SpatioTemporalFilter(5.0)
        for alert in alerts[:20]:
            first.offer(alert)
        resumed = SpatioTemporalFilter(5.0)
        resumed.load_state_dict(first.state_dict())
        kept_resumed = [first.offer(a) for a in alerts[20:]]
        kept_check = [resumed.offer(a) for a in alerts[20:]]
        assert kept_resumed == kept_straight[20:]
        assert kept_check == kept_straight[20:]

    def test_state_dict_is_a_copy(self):
        stf = SpatioTemporalFilter(5.0)
        stf.offer(make_alert(1.0))
        state = stf.state_dict()
        stf.offer(make_alert(100.0, category="OTHER"))
        assert "OTHER" not in state["last_seen"]


class TestStatsSnapshot:
    def test_resumed_compression_is_byte_identical(self):
        records = list(generate_log("liberty", scale=1e-5, seed=SEED).records)
        straight = StatsCollector("liberty")
        for _ in straight.observe(iter(records)):
            pass
        full = straight.finish()

        # observe() flushes at stream end; snapshot mid-stream instead.
        head = StatsCollector("liberty")
        stream = head.observe(iter(records))
        for _ in range(500):
            next(stream)
        snap = head.snapshot()
        resumed = StatsCollector.from_snapshot(snap)
        for _ in resumed.observe(iter(records[500:])):
            pass
        assert resumed.finish() == full

    def test_snapshot_unaffected_by_continuation(self):
        records = list(generate_log("liberty", scale=1e-5, seed=SEED).records)
        collector = StatsCollector("liberty")
        stream = collector.observe(iter(records))
        for _ in range(200):
            next(stream)
        snap = collector.snapshot()
        messages_at_snap = snap.stats.messages
        for _ in stream:
            pass
        assert snap.stats.messages == messages_at_snap


class TestManager:
    def test_cadence(self):
        manager = CheckpointManager(every=10)
        taken = [manager.maybe(n, lambda: object()) for n in (3, 9, 10, 15, 20)]
        assert taken == [False, False, True, False, True]
        assert manager.taken == 2

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            CheckpointManager(every=0)


class TestRunStreamResume:
    def _crash_then_resume(self, crash_at, every=300):
        """Crash a liberty run at ``crash_at`` records, resume from the
        latest checkpoint, and return (baseline, resumed) results."""
        # The baseline checkpoints at the same cadence: summary equality
        # below then also asserts the resumed run's snapshot accounting
        # matches an uninterrupted run's (prime() restores ``taken``).
        baseline = pipeline.run_stream(
            generate_log("liberty", scale=SMALL_SCALE, seed=SEED).records,
            "liberty",
            dead_letters=DeadLetterQueue(),
            checkpointer=CheckpointManager(every=every),
        )

        plan = FaultPlan(FaultConfig.crash_only(at=crash_at, seed=SEED))
        manager = CheckpointManager(every=every)
        dlq = DeadLetterQueue()
        with pytest.raises(CollectorCrash):
            pipeline.run_stream(
                plan.wrap(
                    generate_log("liberty", scale=SMALL_SCALE, seed=SEED).records
                ),
                "liberty",
                dead_letters=dlq,
                checkpointer=manager,
            )
        checkpoint = manager.latest
        assert isinstance(checkpoint, PipelineCheckpoint)
        assert checkpoint.records_consumed <= crash_at

        resumed = pipeline.run_stream(
            plan.wrap(
                generate_log("liberty", scale=SMALL_SCALE, seed=SEED).records
            ),
            "liberty",
            dead_letters=dlq,
            checkpointer=manager,
            resume_from=checkpoint,
        )
        return baseline, resumed

    def test_resume_is_byte_identical(self):
        baseline, resumed = self._crash_then_resume(crash_at=2000)
        assert resumed.stats == baseline.stats
        assert resumed.raw_alerts == baseline.raw_alerts
        assert resumed.filtered_alerts == baseline.filtered_alerts
        assert resumed.category_counts() == baseline.category_counts()
        assert resumed.corrupted_messages == baseline.corrupted_messages
        assert resumed.severity_tab.messages == baseline.severity_tab.messages
        assert resumed.summary() == baseline.summary()

    def test_resume_immediately_after_checkpoint_boundary(self):
        baseline, resumed = self._crash_then_resume(crash_at=600, every=300)
        assert resumed.stats == baseline.stats
        assert resumed.filtered_alerts == baseline.filtered_alerts

    def test_resume_rejects_wrong_system(self):
        plan = FaultPlan(FaultConfig.crash_only(at=500, seed=SEED))
        manager = CheckpointManager(every=100)
        with pytest.raises(CollectorCrash):
            pipeline.run_stream(
                plan.wrap(
                    generate_log("liberty", scale=SMALL_SCALE, seed=SEED).records
                ),
                "liberty",
                checkpointer=manager,
            )
        with pytest.raises(ValueError):
            pipeline.run_stream(
                iter([]), "spirit", resume_from=manager.latest
            )

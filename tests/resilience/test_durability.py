"""The durability layer's three promises, tested in isolation and
end-to-end: a torn tail costs at most the torn frame, bit-rot is
quarantined instead of trusted, and a broken disk degrades the run
without touching its output."""

import errno
import os
import pickle

import pytest

from repro import api as pipeline
from repro.engine.path import AlertPath
from repro.resilience import wire
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.deadletter import DeadLetterQueue
from repro.resilience.durability import (
    CheckpointStore,
    DurabilityStatus,
    RealFilesystem,
    SegmentedWal,
    default_filesystem,
    recover_checkpoint,
)
from repro.resilience.faults import (
    CollectorCrash,
    ENV_FAULT_FS_ERRNO,
    ENV_FAULT_FS_FAIL_AFTER,
    ENV_FAULT_FS_KILL_AT,
    FaultConfig,
    FaultPlan,
    FaultyFilesystem,
    fault_filesystem_from_env,
)
from repro.simulation.generator import generate_log

from ..conftest import SEED, SMALL_SCALE

ENTRIES = [("alert", {"n": i, "body": "x" * (i % 7)}) for i in range(40)]


def small_checkpoint(system="bgl", n=200):
    """A genuine PipelineCheckpoint with non-trivial state."""
    path = AlertPath(system, dead_letters=DeadLetterQueue())
    for record in list(generate_log(system, scale=1e-4, seed=SEED).records)[:n]:
        if path.admit(record):
            path.process(record)
    return path.snapshot()


class TestSegmentedWal:
    def test_round_trip_across_rotation(self, tmp_path):
        wal = SegmentedWal(str(tmp_path), segment_bytes=256)
        for kind, obj in ENTRIES:
            assert wal.append(kind, obj)
        wal.close()
        assert len(wal.segments()) > 1  # rotation actually happened
        assert wal.appended == wal.persisted == len(ENTRIES)

        fresh = SegmentedWal(str(tmp_path), segment_bytes=256)
        assert list(fresh.replay()) == ENTRIES
        assert not fresh.status.degraded

    def test_manual_sync_mode(self, tmp_path):
        wal = SegmentedWal(str(tmp_path), sync_every=0)
        for kind, obj in ENTRIES[:5]:
            assert wal.append(kind, obj)
        assert wal.sync()
        wal.close()
        assert list(SegmentedWal(str(tmp_path)).replay()) == ENTRIES[:5]

    def test_torn_tail_is_truncated_and_appendable(self, tmp_path):
        wal = SegmentedWal(str(tmp_path))
        for kind, obj in ENTRIES[:10]:
            wal.append(kind, obj)
        wal.close()
        segment = tmp_path / wal.segments()[-1]
        clean_size = segment.stat().st_size
        with open(segment, "ab") as handle:
            handle.write(b"\xde\xad\xbe")  # half-written frame, then SIGKILL

        recovered = SegmentedWal(str(tmp_path))
        assert list(recovered.replay()) == ENTRIES[:10]
        assert segment.stat().st_size == clean_size  # tail cut off
        assert any("torn tail" in note for note in recovered.status.notes)
        assert not recovered.status.degraded  # recovery, not failure

        recovered.append("late", 1)
        recovered.close()
        assert list(SegmentedWal(str(tmp_path)).replay()) == (
            ENTRIES[:10] + [("late", 1)]
        )

    def test_bit_rot_mid_journal_quarantines_and_stops(self, tmp_path):
        wal = SegmentedWal(str(tmp_path), segment_bytes=256)
        for kind, obj in ENTRIES:
            wal.append(kind, obj)
        wal.close()
        segments = wal.segments()
        assert len(segments) > 2
        victim = tmp_path / segments[1]
        data = bytearray(victim.read_bytes())
        data[wire.HEADER_SIZE + 10] ^= 0xFF
        victim.write_bytes(bytes(data))

        recovered = SegmentedWal(str(tmp_path), segment_bytes=256)
        replayed = list(recovered.replay())
        # Everything before the rot survives; nothing after it is trusted.
        assert replayed == ENTRIES[:len(replayed)]
        assert len(replayed) < len(ENTRIES)
        assert (tmp_path / (segments[1] + ".corrupt")).exists()
        assert any("skipped" in note for note in recovered.status.notes)

    def test_enospc_degrades_with_exact_accounting(self, tmp_path):
        status = DurabilityStatus()
        wal = SegmentedWal(
            str(tmp_path), fs=FaultyFilesystem(fail_after=0), status=status
        )
        results = [wal.append("alert", i) for i in range(5)]
        assert results == [False] * 5
        assert status.degraded
        assert f"OSError({errno.ENOSPC}," in status.reason
        assert status.unpersisted_wal_records == 5
        assert wal.appended == 5 and wal.persisted == 0

    def test_reset_drops_segments(self, tmp_path):
        wal = SegmentedWal(str(tmp_path))
        wal.append("alert", 1)
        wal.close()
        assert wal.segments()
        wal.reset()
        assert wal.segments() == []
        assert list(SegmentedWal(str(tmp_path)).replay()) == []


def _encode_dict(payload, meta):
    return wire.encode_frame(pickle.dumps({"meta": meta, "payload": payload}))


def _decode_dict(data):
    bundle = pickle.loads(data)
    return bundle["payload"], bundle["meta"]


def dict_store(directory, token="t", **kwargs):
    return CheckpointStore(
        str(directory), token=token,
        encode=_encode_dict, decode=_decode_dict, **kwargs,
    )


class TestCheckpointStore:
    def test_pipeline_checkpoint_round_trip(self, tmp_path):
        checkpoint = small_checkpoint()
        store = CheckpointStore(str(tmp_path), token="run")
        assert store.save(checkpoint)
        assert store.saved == 1

        loaded = CheckpointStore(str(tmp_path), token="run").load()
        assert loaded is not None
        assert loaded.records_consumed == checkpoint.records_consumed
        assert loaded.raw_alerts == checkpoint.raw_alerts
        assert loaded.report == checkpoint.report
        assert loaded.dead_letters == checkpoint.dead_letters
        assert recover_checkpoint(str(tmp_path), "run") is not None

    def test_keep_window_prunes_old_generations(self, tmp_path):
        store = dict_store(tmp_path, keep=2)
        for generation in range(5):
            assert store.save({"generation": generation})
        names = [n for n in os.listdir(tmp_path) if n.endswith(".ckpt")]
        assert sorted(names) == ["gen-00000004.ckpt", "gen-00000005.ckpt"]
        assert dict_store(tmp_path).load() == {"generation": 4}

    def test_corrupt_newest_falls_back_a_generation(self, tmp_path):
        store = dict_store(tmp_path)
        store.save({"generation": 0})
        store.save({"generation": 1})
        newest = tmp_path / "gen-00000002.ckpt"
        data = bytearray(newest.read_bytes())
        data[-4] ^= 0xFF
        newest.write_bytes(bytes(data))

        fresh = dict_store(tmp_path)
        assert fresh.load() == {"generation": 0}
        assert (tmp_path / "gen-00000002.ckpt.corrupt").exists()
        assert any("quarantined" in n for n in fresh.status.notes)

    def test_wrong_token_starts_fresh(self, tmp_path):
        dict_store(tmp_path, token="seed=1").save({"generation": 0})
        other = dict_store(tmp_path, token="seed=2")
        assert other.load() is None
        assert any("different run configuration" in n
                   for n in other.status.notes)

    def test_mark_complete_leaves_nothing_to_resume(self, tmp_path):
        store = dict_store(tmp_path)
        store.save({"generation": 0})
        assert store.mark_complete()
        assert dict_store(tmp_path).load() is None

    def test_enospc_save_degrades_with_exact_accounting(self, tmp_path):
        status = DurabilityStatus()
        store = dict_store(
            tmp_path, fs=FaultyFilesystem(fail_after=0), status=status
        )
        assert store.save({"generation": 0}) is False
        assert store.save({"generation": 1}) is False
        assert status.degraded
        assert status.unpersisted_checkpoints == 2
        assert store.saved == 0
        assert dict_store(tmp_path).load() is None  # nothing half-written

    def test_eio_uses_requested_errno(self, tmp_path):
        status = DurabilityStatus()
        store = dict_store(
            tmp_path,
            fs=FaultyFilesystem(fail_after=0, fail_errno=errno.EIO),
            status=status,
        )
        store.save({"generation": 0})
        assert f"OSError({errno.EIO}," in status.reason

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(str(tmp_path), keep=0)


class TestEnvArming:
    def test_unarmed_environment_yields_none(self):
        assert fault_filesystem_from_env({}) is None

    def test_kill_and_fail_schedules_parse(self):
        fs = fault_filesystem_from_env({
            ENV_FAULT_FS_KILL_AT: "7",
            ENV_FAULT_FS_FAIL_AFTER: "3",
            ENV_FAULT_FS_ERRNO: "EIO",
        })
        assert isinstance(fs, FaultyFilesystem)
        assert fs.kill_at == 7
        assert fs.fail_after == 3
        assert fs.fail_errno == errno.EIO

    def test_unknown_errno_name_falls_back_to_eio(self):
        fs = fault_filesystem_from_env({
            ENV_FAULT_FS_FAIL_AFTER: "0",
            ENV_FAULT_FS_ERRNO: "ENOSUCHTHING",
        })
        assert fs.fail_errno == errno.EIO

    def test_default_filesystem_honors_env(self, monkeypatch):
        for name in (ENV_FAULT_FS_KILL_AT, ENV_FAULT_FS_FAIL_AFTER,
                     ENV_FAULT_FS_ERRNO):
            monkeypatch.delenv(name, raising=False)
        assert type(default_filesystem()) is RealFilesystem
        monkeypatch.setenv(ENV_FAULT_FS_FAIL_AFTER, "12")
        armed = default_filesystem()
        assert isinstance(armed, FaultyFilesystem)
        assert armed.fail_after == 12


class TestDurableResume:
    """The api-level contract: ``state_dir`` turns an exception-crashed
    run into one that resumes byte-identical from disk alone — no
    in-memory manager survives between the attempts."""

    TOKEN = "liberty|scale|seed"

    def _run(self, state_dir, wrap=None, every=300):
        records = generate_log("liberty", scale=SMALL_SCALE, seed=SEED).records
        return pipeline.run_stream(
            wrap(records) if wrap else records,
            "liberty",
            dead_letters=DeadLetterQueue(),
            checkpointer=CheckpointManager(every=every),
            state_dir=state_dir,
            state_token=self.TOKEN,
        )

    def test_crash_resume_from_disk_is_byte_identical(self, tmp_path):
        baseline = self._run(None)

        plan = FaultPlan(FaultConfig.crash_only(at=2000, seed=SEED))
        state_dir = str(tmp_path / "state")
        with pytest.raises(CollectorCrash):
            self._run(state_dir, wrap=plan.wrap)
        persisted = recover_checkpoint(state_dir, self.TOKEN)
        assert persisted is not None
        assert persisted.records_consumed <= 2000

        resumed = self._run(state_dir, wrap=plan.wrap)
        assert resumed.stats == baseline.stats
        assert resumed.raw_alerts == baseline.raw_alerts
        assert resumed.filtered_alerts == baseline.filtered_alerts
        assert resumed.category_counts() == baseline.category_counts()
        assert resumed.corrupted_messages == baseline.corrupted_messages
        assert (resumed.dead_letters.snapshot()
                == baseline.dead_letters.snapshot())
        # Snapshot accounting is cumulative across the crash, and a
        # clean finish consumes the durable state (manifest complete).
        assert resumed.checkpoints.taken == baseline.checkpoints.taken
        assert not resumed.checkpoints.store.status.degraded
        assert recover_checkpoint(state_dir, self.TOKEN) is None

    def test_degraded_storage_never_perturbs_output(self, tmp_path):
        baseline = self._run(None)
        state_dir = str(tmp_path / "doomed")
        records = generate_log("liberty", scale=SMALL_SCALE, seed=SEED).records
        manager = CheckpointManager(every=300)
        result = pipeline.run_stream(
            records,
            "liberty",
            dead_letters=DeadLetterQueue(),
            checkpointer=manager,
            state_dir=state_dir,
            state_token=self.TOKEN,
        )
        # Re-run against a filesystem that fails from the first op.
        doomed = CheckpointStore(
            state_dir + "-b", token=self.TOKEN,
            fs=FaultyFilesystem(fail_after=0),
        )
        manager_b = CheckpointManager(every=300, store=doomed)
        degraded = pipeline.run_stream(
            generate_log("liberty", scale=SMALL_SCALE, seed=SEED).records,
            "liberty",
            dead_letters=DeadLetterQueue(),
            checkpointer=manager_b,
        )
        for run in (result, degraded):
            assert run.stats == baseline.stats
            assert run.filtered_alerts == baseline.filtered_alerts
        status = doomed.status
        assert status.degraded
        assert doomed.saved == 0
        assert status.unpersisted_checkpoints == manager_b.taken

"""Supervised pipeline runs: crash recovery, degradation, run_all.

Holds the two acceptance properties of the resilience work: a crash at a
random point in a supervised run recovers to byte-identical output, and
``run_all`` under default fault injection finishes all five systems.
"""

import numpy as np
import pytest

from repro import api as pipeline
from repro.resilience.faults import FaultConfig
from repro.resilience.supervisor import PipelineSupervisor
from repro.simulation.generator import generate_log
from repro.systems.specs import SYSTEMS

from ..conftest import SEED, SMALL_SCALE


class TestCrashRecovery:
    def test_spirit_crash_at_random_point_recovers_byte_identical(self):
        """ACCEPTANCE: inject a collector crash at a random point in a
        spirit run; the supervised run resumes from the last checkpoint
        and its filtered-alert list and Table 2-style stats are
        byte-identical to an uninterrupted run with the same seed."""
        baseline = pipeline.run_system("spirit", scale=SMALL_SCALE, seed=SEED)

        stream_len = sum(
            1 for _ in generate_log("spirit", scale=SMALL_SCALE, seed=SEED).records
        )
        rng = np.random.default_rng(SEED)
        crash_at = int(rng.integers(100, stream_len - 10))

        supervisor = PipelineSupervisor(restart_budget=3, checkpoint_every=500)
        result = supervisor.run_system(
            "spirit", scale=SMALL_SCALE, seed=SEED,
            faults=FaultConfig.crash_only(at=crash_at, seed=SEED),
        )

        assert result.restarts == 1
        assert not result.degraded
        assert len(result.failure_log) == 1
        assert "CollectorCrash" in result.failure_log[0]
        assert result.stats == baseline.stats  # incl. compressed_bytes
        assert result.raw_alerts == baseline.raw_alerts
        assert result.filtered_alerts == baseline.filtered_alerts
        assert result.category_counts() == baseline.category_counts()
        assert result.corrupted_messages == baseline.corrupted_messages
        assert result.severity_tab.messages == baseline.severity_tab.messages

    def test_crash_before_first_checkpoint_restarts_from_scratch(self):
        baseline = pipeline.run_system("liberty", scale=SMALL_SCALE, seed=SEED)
        supervisor = PipelineSupervisor(restart_budget=1, checkpoint_every=5000)
        result = supervisor.run_system(
            "liberty", scale=SMALL_SCALE, seed=SEED,
            faults=FaultConfig.crash_only(at=40, seed=SEED),
        )
        assert result.restarts == 1
        assert result.stats == baseline.stats
        assert result.filtered_alerts == baseline.filtered_alerts

    def test_unfaulted_supervised_run_matches_plain(self):
        baseline = pipeline.run_system("liberty", scale=SMALL_SCALE, seed=SEED)
        result = PipelineSupervisor().run_system(
            "liberty", scale=SMALL_SCALE, seed=SEED
        )
        assert result.restarts == 0
        assert not result.degraded
        assert result.stats == baseline.stats
        assert result.filtered_alerts == baseline.filtered_alerts


class TestDegradation:
    def test_budget_exhaustion_degrades_instead_of_raising(self):
        """A channel that crashes every ~20 records exhausts the budget;
        the supervisor hands back a flagged partial, not an exception."""
        supervisor = PipelineSupervisor(restart_budget=2, checkpoint_every=10)
        result = supervisor.run_system(
            "liberty", scale=SMALL_SCALE, seed=SEED,
            faults=FaultConfig(seed=1, crash_rate=0.05),
        )
        assert result.degraded
        assert result.restarts == 2
        # Initial attempt + 2 restarts, plus the final dead-letter
        # accounting line emitted at budget exhaustion.
        assert len(result.failure_log) == 4
        assert "final dead-letter accounting" in result.failure_log[-1]
        assert result.final_dead_letters is not None
        assert "degraded" in result.summary()
        # Partial coverage: some prefix of the stream was analyzed.
        assert result.stats.messages < pipeline.run_system(
            "liberty", scale=SMALL_SCALE, seed=SEED
        ).stats.messages

    def test_zero_budget_degrades_on_first_crash(self):
        supervisor = PipelineSupervisor(restart_budget=0, checkpoint_every=100)
        result = supervisor.run_system(
            "liberty", scale=SMALL_SCALE, seed=SEED,
            faults=FaultConfig.crash_only(at=300, seed=SEED),
        )
        assert result.degraded
        assert result.restarts == 0
        # One crash line plus the final dead-letter accounting line.
        assert len(result.failure_log) == 2

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            PipelineSupervisor(restart_budget=-1)


class TestRunAll:
    def test_run_all_with_default_faults_completes_all_systems(self):
        """ACCEPTANCE: with fault injection enabled at defaults, run_all
        completes for all five systems — reporting per-system degraded
        and dead-letter counts instead of crashing."""
        supervisor = PipelineSupervisor(restart_budget=3, checkpoint_every=1000)
        results = supervisor.run_all(
            scale=SMALL_SCALE, seed=SEED, faults=FaultConfig.defaults(seed=11)
        )
        assert set(results) == set(SYSTEMS)
        for name, result in results.items():
            assert result.system == name
            assert isinstance(result.degraded, bool)
            assert result.dead_letters is not None
            assert result.dead_letter_count >= 0
            assert result.stats.messages > 0
            # Whatever happened is reported, not raised:
            assert isinstance(result.summary(), str)

    def test_run_all_via_pipeline_entrypoint(self):
        """pipeline.run_all(faults=...) routes through the supervisor."""
        results = pipeline.run_all(
            scale=SMALL_SCALE, seed=SEED, faults=FaultConfig.defaults(seed=11)
        )
        assert set(results) == set(SYSTEMS)
        for result in results.values():
            assert result.dead_letters is not None

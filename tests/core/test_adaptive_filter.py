"""Unit tests for per-category adaptive filtering (Section 4 extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive_filter import PerCategoryFilter, suggest_thresholds
from repro.core.filtering import log_filter_list, sorted_by_time

from ..conftest import make_alert


class TestPerCategoryFilter:
    def test_per_category_windows(self):
        alerts = sorted_by_time(
            [
                make_alert(0.0, category="FAST"),
                make_alert(2.0, category="FAST"),   # > 1s: kept
                make_alert(0.5, category="SLOW"),
                make_alert(30.0, category="SLOW"),  # < 60s: removed
            ]
        )
        pcf = PerCategoryFilter({"FAST": 1.0, "SLOW": 60.0})
        kept = list(pcf.filter(alerts))
        assert {(a.category, a.timestamp) for a in kept} == {
            ("FAST", 0.0), ("FAST", 2.0), ("SLOW", 0.5),
        }

    def test_default_threshold_for_unlisted(self):
        pcf = PerCategoryFilter({}, default_threshold=5.0)
        alerts = [make_alert(0.0), make_alert(3.0)]
        assert len(list(pcf.filter(alerts))) == 1

    def test_rejects_negative_thresholds(self):
        with pytest.raises(ValueError):
            PerCategoryFilter({"A": -1.0})
        with pytest.raises(ValueError):
            PerCategoryFilter(default_threshold=-1.0)

    def test_threshold_for(self):
        pcf = PerCategoryFilter({"A": 2.0}, default_threshold=7.0)
        assert pcf.threshold_for("A") == 2.0
        assert pcf.threshold_for("B") == 7.0


alert_streams = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e4, allow_nan=False),
        st.sampled_from(["A", "B"]),
    ),
    max_size=50,
).map(lambda items: sorted_by_time([make_alert(t, category=c) for t, c in items]))


@given(alert_streams)
@settings(max_examples=150)
def test_property_empty_mapping_degenerates_to_algorithm_31(alerts):
    """With no per-category overrides the adaptive filter IS Algorithm 3.1."""
    pcf = PerCategoryFilter({}, default_threshold=5.0)
    assert [id(a) for a in pcf.filter(alerts)] == [
        id(a) for a in log_filter_list(alerts, 5.0)
    ]


class TestSuggestThresholds:
    def _bimodal_alerts(self, n_failures=40, burst=6):
        """Failures hours apart, each reported `burst` times seconds apart:
        the Figure 6(a) shape whose antimode a good threshold finds."""
        rng = np.random.default_rng(5)
        alerts = []
        t = 0.0
        for _ in range(n_failures):
            t += float(rng.uniform(3600, 7200))
            for k in range(burst):
                alerts.append(make_alert(t + k * 8.0, category="BURSTY"))
        return sorted_by_time(alerts)

    def test_finds_antimode_between_burst_and_failure_scales(self):
        suggestions = suggest_thresholds(self._bimodal_alerts())
        assert "BURSTY" in suggestions
        # Burst gaps are 8 s, failure gaps are >= 3600 s: the suggestion
        # must separate them.
        assert 8.0 < suggestions["BURSTY"] <= 3600.0

    def test_suggested_threshold_improves_reduction(self):
        """Filtering with the learned threshold gets closer to one alert
        per failure than the global T=5 (which is below the 8 s burst gap)."""
        alerts = self._bimodal_alerts(n_failures=40, burst=6)
        global_kept = log_filter_list(alerts, 5.0)
        pcf = PerCategoryFilter(suggest_thresholds(alerts))
        adaptive_kept = list(pcf.filter(alerts))
        assert len(adaptive_kept) == 40          # exactly one per failure
        assert len(global_kept) == 40 * 6        # T=5 removes nothing

    def test_unimodal_category_keeps_default(self):
        rng = np.random.default_rng(6)
        alerts = sorted_by_time(
            [make_alert(float(t), category="POISSON")
             for t in np.cumsum(rng.exponential(100.0, size=200))]
        )
        suggestions = suggest_thresholds(alerts)
        assert "POISSON" not in suggestions

    def test_sparse_category_skipped(self):
        alerts = [make_alert(0.0), make_alert(100.0)]
        assert suggest_thresholds(alerts) == {}

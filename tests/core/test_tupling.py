"""Unit and property tests for Tsao-style tuple clustering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filtering import sorted_by_time
from repro.core.tupling import tuple_alerts, tuple_statistics

from ..conftest import make_alert


class TestTupleAlerts:
    def test_gap_splits_tuples(self):
        alerts = [make_alert(0.0), make_alert(2.0), make_alert(100.0)]
        tuples = list(tuple_alerts(alerts, window=5.0))
        assert [t.size for t in tuples] == [2, 1]

    def test_empty_stream(self):
        assert list(tuple_alerts([])) == []

    def test_cross_category_grouping(self):
        """Unlike the paper's filter, tuples group across categories —
        the classic tupling 'collision' behavior."""
        alerts = sorted_by_time(
            [make_alert(0.0, category="A"), make_alert(1.0, category="B")]
        )
        tuples = list(tuple_alerts(alerts, window=5.0))
        assert len(tuples) == 1
        assert tuples[0].categories() == ("A", "B")

    def test_tuple_accessors(self):
        alerts = sorted_by_time(
            [
                make_alert(0.0, source="n1", category="A"),
                make_alert(1.0, source="n2", category="A"),
                make_alert(2.0, source="n1", category="B"),
            ]
        )
        (tup,) = tuple_alerts(alerts, window=5.0)
        assert tup.start == 0.0
        assert tup.end == 2.0
        assert tup.duration == 2.0
        assert tup.sources() == ("n1", "n2")
        assert tup.representative() is alerts[0]

    def test_window_zero_splits_on_any_positive_gap(self):
        alerts = [make_alert(0.0), make_alert(0.0), make_alert(1.0)]
        tuples = list(tuple_alerts(alerts, window=0.0))
        assert [t.size for t in tuples] == [2, 1]

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            list(tuple_alerts([make_alert(0.0)], window=-1.0))


class TestStatistics:
    def test_empty(self):
        stats = tuple_statistics([])
        assert stats["count"] == 0
        assert stats["collision_rate"] == 0.0

    def test_collision_rate(self):
        alerts = sorted_by_time(
            [
                make_alert(0.0, category="A"),
                make_alert(1.0, category="B"),   # collision tuple
                make_alert(100.0, category="A"),  # clean tuple
            ]
        )
        stats = tuple_statistics(tuple_alerts(alerts, window=5.0))
        assert stats["count"] == 2
        assert stats["collision_rate"] == pytest.approx(0.5)
        assert stats["max_size"] == 2


@st.composite
def sorted_times(draw):
    times = draw(
        st.lists(
            st.floats(min_value=0, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    return sorted(times)


@given(sorted_times(), st.floats(min_value=0.1, max_value=100))
@settings(max_examples=200)
def test_property_tuples_partition_the_stream(times, window):
    alerts = [make_alert(t) for t in times]
    tuples = list(tuple_alerts(alerts, window=window))
    flattened = [a for tup in tuples for a in tup.alerts]
    assert flattened == alerts  # exact partition, order preserved


@given(sorted_times(), st.floats(min_value=0.1, max_value=100))
@settings(max_examples=200)
def test_property_intra_gap_bounded_inter_gap_exceeds(times, window):
    alerts = [make_alert(t) for t in times]
    tuples = list(tuple_alerts(alerts, window=window))
    for tup in tuples:
        for a, b in zip(tup.alerts, tup.alerts[1:]):
            assert b.timestamp - a.timestamp <= window
    for first, second in zip(tuples, tuples[1:]):
        assert second.start - first.end > window

"""Unit and property tests for Algorithm 3.1 (simultaneous filtering)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filtering import (
    OutOfOrderError,
    SpatioTemporalFilter,
    filter_with_report,
    log_filter_list,
    sorted_by_time,
)

from ..conftest import make_alert


class TestBasicSemantics:
    def test_single_alert_kept(self):
        assert len(log_filter_list([make_alert(0.0)])) == 1

    def test_repeat_within_threshold_removed(self):
        alerts = [make_alert(0.0), make_alert(3.0)]
        kept = log_filter_list(alerts)
        assert [a.timestamp for a in kept] == [0.0]

    def test_repeat_beyond_threshold_kept(self):
        alerts = [make_alert(0.0), make_alert(6.0)]
        assert len(log_filter_list(alerts)) == 2

    def test_boundary_gap_exactly_t_is_kept(self):
        # Algorithm 3.1 removes on t_i - X[c_i] < T, strictly.
        alerts = [make_alert(0.0), make_alert(5.0)]
        assert len(log_filter_list(alerts, threshold=5.0)) == 2

    def test_chain_suppression(self):
        # "if a node reports a particular alert every T seconds for a week,
        # the temporal filter keeps only the first" — suppressed alerts
        # refresh the clock.
        alerts = [make_alert(float(t)) for t in range(0, 100, 3)]
        assert len(log_filter_list(alerts)) == 1

    def test_spatial_suppression_across_sources(self):
        # "an alert ... is considered redundant if ANY source, including s,
        # had reported that alert category within T seconds."
        alerts = [
            make_alert(0.0, source="n1"),
            make_alert(2.0, source="n2"),
            make_alert(4.0, source="n3"),
        ]
        kept = log_filter_list(alerts)
        assert len(kept) == 1
        assert kept[0].source == "n1"

    def test_round_robin_reporting_collapses(self):
        # The paper's k-node round-robin example.
        alerts = [
            make_alert(float(t), source=f"n{t % 4}") for t in range(0, 40, 2)
        ]
        assert len(log_filter_list(alerts)) == 1

    def test_categories_filter_independently(self):
        alerts = sorted_by_time(
            [make_alert(0.0, category="A"), make_alert(1.0, category="B"),
             make_alert(2.0, category="A"), make_alert(3.0, category="B")]
        )
        kept = log_filter_list(alerts)
        assert {(a.category, a.timestamp) for a in kept} == {("A", 0.0), ("B", 1.0)}

    def test_empty_stream(self):
        assert log_filter_list([]) == []

    def test_zero_threshold_keeps_everything_with_positive_gaps(self):
        alerts = [make_alert(0.0), make_alert(0.5), make_alert(1.0)]
        assert len(log_filter_list(alerts, threshold=0.0)) == 3

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SpatioTemporalFilter(-1.0)


class TestTableClear:
    def test_clear_does_not_change_output(self):
        # The clear(X) step is memory hygiene: a long quiet gap wipes the
        # table, but any surviving entry would have been stale anyway.
        alerts = [make_alert(0.0), make_alert(1000.0), make_alert(1002.0)]
        kept = log_filter_list(alerts)
        assert [a.timestamp for a in kept] == [0.0, 1000.0]

    def test_internal_table_is_cleared_after_quiet_gap(self):
        stf = SpatioTemporalFilter()
        stf.offer(make_alert(0.0, category="A"))
        stf.offer(make_alert(1.0, category="B"))
        assert len(stf._last_seen) == 2
        stf.offer(make_alert(100.0, category="C"))
        assert set(stf._last_seen) == {"C"}


class TestOutOfOrderInput:
    """Regression: out-of-order input used to corrupt filter state
    silently — a backwards timestamp overwrote ``last_seen`` and made the
    filter keep later repeats it should have suppressed.  ``offer`` now
    enforces monotonicity: strict by default, clamping within an explicit
    reorder tolerance."""

    def test_backwards_timestamp_raises_by_default(self):
        stf = SpatioTemporalFilter()
        stf.offer(make_alert(10.0))
        with pytest.raises(OutOfOrderError) as excinfo:
            stf.offer(make_alert(4.0))
        assert excinfo.value.timestamp == 4.0
        assert excinfo.value.last_time == 10.0

    def test_equal_timestamp_is_not_disorder(self):
        stf = SpatioTemporalFilter()
        stf.offer(make_alert(10.0))
        stf.offer(make_alert(10.0, category="OTHER"))  # no raise

    def test_rejected_alert_does_not_corrupt_state(self):
        stf = SpatioTemporalFilter(threshold=5.0)
        stf.offer(make_alert(10.0))
        with pytest.raises(OutOfOrderError):
            stf.offer(make_alert(1.0))
        # 12.0 is within threshold of the kept 10.0: still suppressed.
        assert not stf.offer(make_alert(12.0))

    def test_within_tolerance_clamped_not_raised(self):
        stf = SpatioTemporalFilter(threshold=5.0, reorder_tolerance=2.0)
        assert stf.offer(make_alert(10.0))
        # 1.5s backwards: tolerated, treated as arriving at 10.0 — and
        # therefore suppressed as a repeat, not kept via a stale gap.
        assert not stf.offer(make_alert(8.5))
        # Clamping must not push time forward: 10.5 is 0.5s after the
        # clamped 10.0 and still inside the threshold window.
        assert not stf.offer(make_alert(10.5))
        # Suppressed repeats refresh the clock (chain suppression), so the
        # next keeper must clear 10.5 + threshold.
        assert stf.offer(make_alert(16.0))

    def test_beyond_tolerance_raises(self):
        stf = SpatioTemporalFilter(reorder_tolerance=2.0)
        stf.offer(make_alert(10.0))
        with pytest.raises(OutOfOrderError):
            stf.offer(make_alert(7.0))

    def test_regression_silent_suppression_window_shrink(self):
        """The historical bug: a backwards record used to rewind the
        category clock, so a repeat inside the threshold was kept.  The
        tolerant filter clamps instead and keeps suppressing."""
        stf = SpatioTemporalFilter(threshold=5.0, reorder_tolerance=10.0)
        assert stf.offer(make_alert(20.0))
        assert not stf.offer(make_alert(12.0))  # clamped to 20.0
        # With the old behavior last_seen would now be 12.0 and 21.0
        # (gap 9 > 5) would sneak through; clamped state suppresses it.
        assert not stf.offer(make_alert(21.0))

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError):
            SpatioTemporalFilter(reorder_tolerance=-1.0)


class TestStats:
    def test_counters(self):
        stf = SpatioTemporalFilter()
        for alert in [make_alert(0.0), make_alert(1.0), make_alert(10.0)]:
            stf.offer(alert)
        assert stf.stats.seen == 3
        assert stf.stats.kept == 2
        assert stf.stats.removed == 1
        assert stf.stats.reduction_ratio == pytest.approx(1 / 3)

    def test_reset(self):
        stf = SpatioTemporalFilter()
        stf.offer(make_alert(0.0))
        stf.reset()
        assert stf.stats.seen == 0
        assert stf.offer(make_alert(0.1))  # fresh state keeps it

    def test_report_per_category(self):
        alerts = sorted_by_time(
            [make_alert(0.0, category="A"), make_alert(1.0, category="A"),
             make_alert(2.0, category="B")]
        )
        kept, report = filter_with_report(alerts)
        assert report.by_category == {"A": [2, 1], "B": [1, 1]}
        assert report.raw_total == 3
        assert report.filtered_total == 2
        assert len(kept) == 2


# -- property-based tests ----------------------------------------------------

alert_streams = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e4, allow_nan=False),
        st.sampled_from(["A", "B", "C"]),
        st.sampled_from(["n1", "n2"]),
    ),
    max_size=60,
).map(
    lambda items: sorted_by_time(
        [make_alert(t, source=s, category=c) for t, c, s in items]
    )
)


@given(alert_streams)
@settings(max_examples=200)
def test_property_output_is_subsequence_of_input(alerts):
    kept = log_filter_list(alerts)
    it = iter(alerts)
    assert all(any(k is a for a in it) for k in kept)


@given(alert_streams)
@settings(max_examples=200)
def test_property_first_alert_always_kept(alerts):
    kept = log_filter_list(alerts)
    if alerts:
        assert kept and kept[0] is alerts[0]


@given(alert_streams, st.floats(min_value=0.1, max_value=50))
@settings(max_examples=200)
def test_property_kept_same_category_gaps_at_least_t(alerts, threshold):
    kept = log_filter_list(alerts, threshold)
    last = {}
    for alert in kept:
        if alert.category in last:
            assert alert.timestamp - last[alert.category] >= threshold
        last[alert.category] = alert.timestamp


@given(alert_streams)
@settings(max_examples=100)
def test_property_idempotent(alerts):
    once = log_filter_list(alerts)
    twice = log_filter_list(once)
    assert twice == once


@given(alert_streams, st.floats(min_value=0.1, max_value=20),
       st.floats(min_value=0.1, max_value=20))
@settings(max_examples=100)
def test_property_monotone_in_threshold(alerts, t_small, t_large):
    """A larger threshold never keeps more alerts."""
    lo, hi = sorted([t_small, t_large])
    assert len(log_filter_list(alerts, hi)) <= len(log_filter_list(alerts, lo))


def _reference_filter(alerts, threshold):
    """Differential-testing oracle: because suppressed alerts refresh the
    clock, Algorithm 3.1 reduces to 'keep iff the gap to the immediately
    preceding same-category alert (any source) is >= T'."""
    last = {}
    kept = []
    for alert in alerts:
        previous = last.get(alert.category)
        last[alert.category] = alert.timestamp
        if previous is None or alert.timestamp - previous >= threshold:
            kept.append(alert)
    return kept


@given(alert_streams, st.floats(min_value=0.1, max_value=50))
@settings(max_examples=200)
def test_property_differential_against_reference(alerts, threshold):
    """The full Algorithm 3.1 (with its clear(X) step) must agree with the
    simple per-category-gap oracle on every input."""
    assert [id(a) for a in log_filter_list(alerts, threshold)] == [
        id(a) for a in _reference_filter(alerts, threshold)
    ]

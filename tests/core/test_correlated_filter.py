"""Unit tests for correlation-aware filtering (the Figure 3 problem)."""

import numpy as np
import pytest

from repro.core.correlated_filter import (
    CorrelationAwareFilter,
    learn_correlated_groups,
    pair_cooccurrence,
)
from repro.core.filtering import sorted_by_time

from ..conftest import make_alert


def _figure3_style_alerts(n_failures=12, lanai_probability=0.7, seed=3):
    """GM_PAR-like failures occasionally followed seconds later by a
    GM_LANAI-like echo — Figure 3's shape."""
    rng = np.random.default_rng(seed)
    alerts = []
    t = 0.0
    for _ in range(n_failures):
        t += float(rng.uniform(5e4, 2e5))
        alerts.append(make_alert(t, category="GM_PAR", source="n1"))
        if rng.random() < lanai_probability:
            alerts.append(
                make_alert(t + float(rng.uniform(1, 20)),
                           category="GM_LANAI", source="n1")
            )
    return sorted_by_time(alerts)


class TestPairCooccurrence:
    def test_counts_windowed_pairs(self):
        alerts = sorted_by_time(
            [
                make_alert(0.0, category="A"),
                make_alert(5.0, category="B"),
                make_alert(1000.0, category="A"),
                make_alert(1001.0, category="B"),
            ]
        )
        counts = pair_cooccurrence(alerts, window=60.0)
        assert counts == {("A", "B"): 2}

    def test_same_category_not_paired(self):
        alerts = [make_alert(0.0, category="A"), make_alert(1.0, category="A")]
        assert pair_cooccurrence(alerts) == {}

    def test_outside_window_not_paired(self):
        alerts = sorted_by_time(
            [make_alert(0.0, category="A"), make_alert(500.0, category="B")]
        )
        assert pair_cooccurrence(alerts, window=60.0) == {}


class TestLearnGroups:
    def test_learns_the_figure3_pair(self):
        groups = learn_correlated_groups(_figure3_style_alerts())
        assert frozenset({"GM_PAR", "GM_LANAI"}) in groups

    def test_independent_categories_not_grouped(self):
        rng = np.random.default_rng(4)
        alerts = sorted_by_time(
            [make_alert(float(t), category="X")
             for t in np.cumsum(rng.exponential(5e4, size=30))]
            + [make_alert(float(t), category="Y")
               for t in np.cumsum(rng.exponential(7e4, size=30))]
        )
        assert learn_correlated_groups(alerts) == []

    def test_transitive_union(self):
        alerts = []
        for i in range(6):
            base = i * 1e5
            alerts.append(make_alert(base, category="A"))
            alerts.append(make_alert(base + 2, category="B"))
            alerts.append(make_alert(base + 4, category="C"))
        groups = learn_correlated_groups(sorted_by_time(alerts))
        assert frozenset({"A", "B", "C"}) in groups


class TestCorrelationAwareFilter:
    def test_grouped_categories_share_a_clock(self):
        alerts = _figure3_style_alerts(lanai_probability=1.0)
        caf = CorrelationAwareFilter(
            groups=[frozenset({"GM_PAR", "GM_LANAI"})], threshold=60.0,
        )
        kept = list(caf.filter(alerts))
        # One alert per failure: the GM_LANAI echoes are coalesced away.
        assert all(a.category == "GM_PAR" for a in kept)
        assert len(kept) == 12

    def test_plain_filter_keeps_both_tags(self):
        """Without groups, 'correlated alerts relegated to different
        categories' both survive — the behavior the paper criticizes."""
        alerts = _figure3_style_alerts(lanai_probability=1.0)
        caf = CorrelationAwareFilter(groups=[], threshold=60.0)
        kept = list(caf.filter(alerts))
        assert {a.category for a in kept} == {"GM_PAR", "GM_LANAI"}
        assert len(kept) == 24

    def test_ungrouped_categories_unaffected(self):
        caf = CorrelationAwareFilter(
            groups=[frozenset({"A", "B"})], threshold=5.0,
        )
        alerts = sorted_by_time(
            [make_alert(0.0, category="C"), make_alert(1.0, category="C")]
        )
        assert len(list(caf.filter(alerts))) == 1

    def test_group_key(self):
        caf = CorrelationAwareFilter(groups=[frozenset({"B", "A"})])
        assert caf.group_key("A") == caf.group_key("B") == "A"
        assert caf.group_key("C") == "C"

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError, match="multiple groups"):
            CorrelationAwareFilter(
                groups=[frozenset({"A", "B"}), frozenset({"B", "C"})]
            )

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            CorrelationAwareFilter(threshold=-1)

"""Unit and property tests for the serial filter baseline and the
simultaneous-vs-serial comparison the paper draws (Section 3.3.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filtering import log_filter_list, sorted_by_time
from repro.core.serial_filter import (
    compare_filters,
    serial_filter_list,
    spatial_filter,
    temporal_filter,
)

from ..conftest import make_alert


class TestTemporalFilter:
    def test_same_source_chain_collapses(self):
        alerts = [make_alert(float(t), source="n1") for t in range(0, 30, 3)]
        assert len(list(temporal_filter(alerts))) == 1

    def test_different_sources_pass(self):
        alerts = [
            make_alert(0.0, source="n1"),
            make_alert(1.0, source="n2"),
        ]
        assert len(list(temporal_filter(alerts))) == 2

    def test_different_categories_pass(self):
        alerts = sorted_by_time(
            [make_alert(0.0, category="A"), make_alert(1.0, category="B")]
        )
        assert len(list(temporal_filter(alerts))) == 2


class TestSpatialFilter:
    def test_other_source_within_t_removed(self):
        alerts = [make_alert(0.0, source="n1"), make_alert(2.0, source="n2")]
        kept = list(spatial_filter(alerts))
        assert [a.source for a in kept] == ["n1"]

    def test_same_source_repeats_not_its_job(self):
        alerts = [make_alert(0.0, source="n1"), make_alert(2.0, source="n1")]
        assert len(list(spatial_filter(alerts))) == 2


class TestPaperDivergenceExample:
    """The Section 3.3.2 critique: the temporal stage removes the cue the
    spatial stage needed."""

    def _alerts(self):
        # n1 reports at t=0 and t=3 (same category); n2 reports at t=7.
        return sorted_by_time(
            [
                make_alert(0.0, source="n1"),
                make_alert(3.0, source="n1"),
                make_alert(7.0, source="n2"),
            ]
        )

    def test_serial_keeps_the_shared_resource_duplicate(self):
        kept = serial_filter_list(self._alerts())
        assert [(a.timestamp, a.source) for a in kept] == [(0.0, "n1"), (7.0, "n2")]

    def test_simultaneous_removes_it(self):
        kept = log_filter_list(self._alerts())
        assert [(a.timestamp, a.source) for a in kept] == [(0.0, "n1")]

    def test_compare_filters_reports_the_difference(self):
        outcome = compare_filters(self._alerts())
        assert len(outcome["simultaneous"]) == 1
        assert len(outcome["serial"]) == 2
        removed = outcome["removed_only_by_simultaneous"]
        assert [a.source for a in removed] == ["n2"]
        assert outcome["removed_only_by_serial"] == []


alert_streams = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=5e3, allow_nan=False),
        st.sampled_from(["A", "B"]),
        st.sampled_from(["n1", "n2", "n3"]),
    ),
    max_size=60,
).map(
    lambda items: sorted_by_time(
        [make_alert(t, source=s, category=c) for t, c, s in items]
    )
)


@given(alert_streams)
@settings(max_examples=200)
def test_property_simultaneous_output_contained_in_serial(alerts):
    """Anything Algorithm 3.1 keeps, the serial pipeline keeps too: the
    simultaneous filter's suppression condition (any same-category alert
    within T) is strictly broader at every step."""
    simultaneous = {id(a) for a in log_filter_list(alerts)}
    serial = {id(a) for a in serial_filter_list(alerts)}
    assert simultaneous <= serial


@given(alert_streams)
@settings(max_examples=200)
def test_property_both_keep_first_alert(alerts):
    if not alerts:
        return
    assert serial_filter_list(alerts)[0] is alerts[0]
    assert log_filter_list(alerts)[0] is alerts[0]


@given(alert_streams)
@settings(max_examples=100)
def test_property_single_source_streams_agree(alerts):
    """With one source the spatial stage is a no-op and the algorithms
    coincide."""
    single = [a for a in alerts if a.source == "n1"]
    assert [id(a) for a in serial_filter_list(single)] == [
        id(a) for a in log_filter_list(single)
    ]

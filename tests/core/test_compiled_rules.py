"""Compiled-alternation tagger: differential equivalence with the scan.

The compiled fast path (:mod:`repro.core.rules.compiled`) must be
*invisible*: for every text, the branch-dispatched alternation plus the
bounded ordered re-scan must pick exactly the rule the naive per-rule
ordered loop picks (first-rule-wins, logsurfer semantics).  These tests
pin that equivalence three ways — hypothesis-generated adversarial texts
over all five system rulesets, the frozen golden corpus, and handwritten
rulesets engineered so leftmost-position and first-rule-wins disagree —
plus the scoped inline-flag edge cases from the PR 4 prefilter fix.
"""

from __future__ import annotations

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.categories import AlertType, CategoryDef, Ruleset
from repro.core.rules import RULESETS
from repro.core.rules.compiled import (
    CompiledRuleset,
    compiled_ruleset,
    required_literal,
    scoped_pattern,
)
from repro.core.tagging import RulesetHandle, Tagger

ALL_SYSTEMS = sorted(RULESETS)


def naive_index(compiled: CompiledRuleset, text: str):
    """The reference semantics: test every rule in order, first wins."""
    for k, (pattern, _cat) in enumerate(compiled._ordered):
        if pattern.search(text):
            return k
    return None


def _categories(*patterns, **common):
    return tuple(
        CategoryDef(
            name=f"R{k}", system="test", alert_type=AlertType.SOFTWARE,
            pattern=pattern, **common,
        )
        for k, pattern in enumerate(patterns)
    )


def _ruleset(*patterns, **common):
    return Ruleset(system="test", categories=_categories(*patterns, **common))


# ---------------------------------------------------------------------------
# The five system rulesets compile in dispatch mode and agree with the
# naive scan on adversarial generated texts.
# ---------------------------------------------------------------------------


class TestSystemRulesets:
    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_dispatch_mode_compiles(self, system):
        """All five shipped rulesets support branch dispatch (no unsafe
        constructs); fallback mode is for ad-hoc rulesets only."""
        compiled = compiled_ruleset(RULESETS[system])
        assert compiled.dispatch is not None
        assert compiled.prefilter is not None
        assert len(compiled._branch_of) == len(compiled.categories)

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_cache_returns_same_object(self, system):
        handle = RulesetHandle(system)
        assert handle.compiled() is handle.compiled()
        assert handle.compiled() is compiled_ruleset(RULESETS[system])

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_examples_agree_with_naive_scan(self, system):
        compiled = compiled_ruleset(RULESETS[system])
        for cat in compiled.categories:
            if not cat.example:
                continue
            for text in (
                cat.example,
                f"{cat.facility}: {cat.example}" if cat.facility
                else cat.example,
                cat.example.upper(),
                cat.example[: max(4, len(cat.example) // 2)],
                f"prefix noise {cat.example} suffix noise",
            ):
                assert compiled.match_index(text) == \
                    naive_index(compiled, text), (system, cat.name, text)


def _example_fragments():
    fragments = set()
    for ruleset in RULESETS.values():
        for cat in ruleset:
            if cat.example:
                fragments.add(cat.example)
                fragments.update(cat.example.split())
    return sorted(fragments)


FRAGMENTS = _example_fragments()


@st.composite
def adversarial_texts(draw):
    """Concatenations of rule-example fragments, junk, and mutations —
    texts engineered to tickle more than one branch of an alternation."""
    parts = draw(st.lists(
        st.one_of(
            st.sampled_from(FRAGMENTS),
            st.text(max_size=12),
        ),
        min_size=0, max_size=5,
    ))
    text = draw(st.sampled_from([" ", ": ", ""])).join(parts)
    mutation = draw(st.sampled_from(["none", "upper", "lower", "truncate"]))
    if mutation == "upper":
        text = text.upper()
    elif mutation == "lower":
        text = text.lower()
    elif mutation == "truncate" and text:
        text = text[: draw(st.integers(0, len(text)))]
    return text


class TestHypothesisDifferential:
    @settings(max_examples=300, deadline=None)
    @given(text=adversarial_texts(), system=st.sampled_from(ALL_SYSTEMS))
    def test_match_index_equals_naive_scan(self, text, system):
        compiled = compiled_ruleset(RULESETS[system])
        assert compiled.match_index(text) == naive_index(compiled, text)

    @settings(max_examples=100, deadline=None)
    @given(
        texts=st.lists(adversarial_texts(), max_size=12),
        system=st.sampled_from(ALL_SYSTEMS),
    )
    def test_match_texts_equals_per_text(self, texts, system):
        compiled = compiled_ruleset(RULESETS[system])
        expected = []
        for i, text in enumerate(texts):
            k = naive_index(compiled, text)
            if k is not None:
                expected.append((i, compiled.categories[k]))
        assert compiled.match_texts(texts) == expected

    @settings(max_examples=150, deadline=None)
    @given(text=adversarial_texts(), system=st.sampled_from(ALL_SYSTEMS))
    def test_tagger_fast_path_equals_disabled_fast_path(self, text, system):
        """The Tagger-level differential: ``_prefilter = None`` drops to
        the naive ordered scan, the PR 4 reference semantics."""
        fast = Tagger(RULESETS[system])
        slow = Tagger(RULESETS[system])
        slow._prefilter = None
        a = fast.match_text(text)
        b = slow.match_text(text)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.name == b.name


# ---------------------------------------------------------------------------
# First-rule-wins vs leftmost-position: engineered disagreements.
# ---------------------------------------------------------------------------


class TestFirstRuleWins:
    def test_later_rule_matching_earlier_position_loses(self):
        """Dispatch finds the leftmost-position branch; the ordered
        re-scan must still hand the win to the earlier *rule*."""
        compiled = CompiledRuleset(_ruleset(r"tail error", r"head fault"))
        assert compiled.dispatch is not None
        # Rule 1 matches at position 0, rule 0 at position 11 — the
        # leftmost-position candidate is rule 1, the winner is rule 0.
        assert compiled.match_index("head fault tail error") == 0

    def test_overlapping_prefix_rules(self):
        compiled = CompiledRuleset(
            _ruleset(r"disk error on sda", r"disk error")
        )
        assert compiled.match_index("disk error on sda") == 0
        assert compiled.match_index("disk error on sdb") == 1
        assert compiled.match_index("all quiet") is None

    def test_anchored_rule_vs_floating_rule(self):
        compiled = CompiledRuleset(_ruleset(r"^kernel: panic", r"panic"))
        assert compiled.match_index("kernel: panic now") == 0
        assert compiled.match_index("user: panic now") == 1

    @settings(max_examples=200, deadline=None)
    @given(
        kinds=st.lists(st.sampled_from(["alpha beta", "beta gamma",
                                        "gamma alpha", "alpha", "beta",
                                        "gamma", "delta"]),
                       min_size=0, max_size=4),
    )
    def test_random_fragment_soups(self, kinds):
        compiled = CompiledRuleset(
            _ruleset(r"alpha beta", r"gamma", r"beta")
        )
        text = " ".join(kinds)
        assert compiled.match_index(text) == naive_index(compiled, text)


# ---------------------------------------------------------------------------
# Scoped inline flags (the PR 4 edge cases) through the compiled path.
# ---------------------------------------------------------------------------


class TestScopedFlags:
    def test_ignorecase_stays_scoped_in_dispatch(self):
        ruleset = Ruleset(system="test", categories=(
            CategoryDef(name="CASED", system="test",
                        alert_type=AlertType.HARDWARE,
                        pattern=r"ECC error"),
            CategoryDef(name="LOOSE", system="test",
                        alert_type=AlertType.SOFTWARE,
                        pattern=r"link failure", flags=re.IGNORECASE),
        ))
        compiled = CompiledRuleset(ruleset)
        assert compiled.dispatch is not None
        assert compiled.match_index("LINK FAILURE on port 3") == 1
        assert compiled.match_index("ecc ERROR") is None
        assert compiled.match_index("ECC error") == 0

    def test_inline_global_flag_prefix_lifts_into_branch(self):
        compiled = CompiledRuleset(_ruleset(r"panic", r"(?i)fatal error"))
        assert compiled.dispatch is not None
        assert compiled.match_index("FATAL ERROR in ciod") == 1
        assert compiled.match_index("PANIC") is None
        assert compiled.match_index("panic") == 0

    def test_case_insensitive_rule_keeps_literal_gate_permissive(self):
        """A ``(?i)`` rule's literal-gate branch must be case-blind, or
        the gate would reject texts the rule matches."""
        compiled = CompiledRuleset(
            _ruleset(r"(?i)fatal error", r"disk fault")
        )
        if compiled.literal_gate is not None:
            assert compiled.match_index("FATAL ERROR") == 0

    def test_scoped_pattern_shapes(self):
        plain = CategoryDef(name="A", system="t",
                            alert_type=AlertType.HARDWARE, pattern=r"x+")
        flagged = CategoryDef(name="B", system="t",
                              alert_type=AlertType.HARDWARE, pattern=r"x+",
                              flags=re.IGNORECASE | re.DOTALL)
        inlined = CategoryDef(name="C", system="t",
                              alert_type=AlertType.HARDWARE,
                              pattern=r"(?im)x+")
        assert scoped_pattern(plain) == "(?:x+)"
        assert scoped_pattern(flagged) == "(?is:x+)"
        assert scoped_pattern(inlined) == "(?im:x+)"


# ---------------------------------------------------------------------------
# Fallback mode: unsafe constructs keep the historical behavior.
# ---------------------------------------------------------------------------


class TestFallbackMode:
    @pytest.mark.parametrize("pattern", [
        r"(?P<name>abc)def",          # named group collides with _cK
        r"(abc) \1",                  # numeric backreference
        r"(?P<g>a)(?P=g)",            # named backreference
        r"(a)(?(1)b|c)",              # conditional
    ])
    def test_unsafe_construct_disables_dispatch(self, pattern):
        compiled = CompiledRuleset(_ruleset(r"plain error", pattern))
        assert compiled.dispatch is None
        assert compiled.prefilter is not None
        assert compiled.match_index("plain error here") == 0

    def test_fallback_agrees_with_naive_scan(self):
        compiled = CompiledRuleset(
            _ruleset(r"(abc) \1 tail", r"abc")
        )
        assert compiled.dispatch is None
        for text in ["abc abc tail", "abc", "nothing", "xabcx"]:
            assert compiled.match_index(text) == naive_index(compiled, text)

    def test_empty_ruleset(self):
        compiled = CompiledRuleset(Ruleset(system="test", categories=()))
        assert compiled.match_index("anything") is None
        assert compiled.match_texts(["a", "b"]) == []


# ---------------------------------------------------------------------------
# required_literal units.
# ---------------------------------------------------------------------------


class TestRequiredLiteral:
    def test_plain_literal(self):
        assert required_literal(r"machine check interrupt") == \
            "machine check interrupt"

    def test_longest_run_wins(self):
        assert required_literal(r"ab.*parity_interrupt") == \
            "parity_interrupt"

    def test_escaped_metacharacters_count_as_literals(self):
        assert required_literal(r"gm_parity\.c") == "gm_parity.c"

    def test_top_level_alternation_has_no_required_literal(self):
        assert required_literal(r"abcdef|ghijkl") is None

    def test_quantified_tail_is_not_required(self):
        # The quantifier detaches its operand from the literal run.
        assert required_literal(r"warning(s)?") == "warning"

    def test_short_literal_rejected(self):
        assert required_literal(r"ab.*cd") is None

    def test_unparsable_pattern_is_none(self):
        assert required_literal(r"(unclosed") is None

    def test_inline_flag_prefix_is_lifted(self):
        assert required_literal(r"(?i)fatal error") == "fatal error"

    def test_literal_is_actually_required(self):
        """Semantic check: every match of the pattern contains the
        extracted literal."""
        cases = [
            (r"data TLB error interrupt", "data TLB error interrupt"),
            (r"\d+ double-hummer exceptions?", " double-hummer exception"),
            (r"NMI: +received", None),  # run broken by quantified space
        ]
        for pattern, expected in cases:
            literal = required_literal(pattern)
            if expected is None:
                continue
            assert literal is not None and len(literal) >= 4, pattern
            compiled = re.compile(pattern)
            probe = "zz 12 double-hummer exceptions zz"
            found = compiled.search(probe)
            if found:
                assert literal in probe

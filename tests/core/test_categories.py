"""Unit tests for the alert/category vocabulary."""

import pytest

from repro.core.categories import Alert, AlertType, CategoryDef, Ruleset
from repro.logmodel.record import LogRecord


class TestAlertType:
    def test_codes_match_paper(self):
        assert AlertType.HARDWARE.value == "H"
        assert AlertType.SOFTWARE.value == "S"
        assert AlertType.INDETERMINATE.value == "I"

    def test_from_code(self):
        assert AlertType.from_code("H") is AlertType.HARDWARE

    def test_from_code_rejects_unknown(self):
        with pytest.raises(ValueError):
            AlertType.from_code("X")


def _category(**overrides):
    defaults = dict(
        name="TESTCAT",
        system="test",
        alert_type=AlertType.SOFTWARE,
        pattern=r"boom",
        facility="kernel",
        example="boom happened",
    )
    defaults.update(overrides)
    return CategoryDef(**defaults)


class TestCategoryDef:
    def test_compiled_pattern_searches(self):
        assert _category().compiled().search("the boom happened")

    def test_make_body_defaults_to_example(self):
        assert _category().make_body() == "boom happened"

    def test_make_body_uses_factory(self):
        cat = _category(body_factory=lambda rng: "boom 42")
        assert cat.make_body() == "boom 42"

    def test_body_factory_excluded_from_equality(self):
        a = _category(body_factory=lambda rng: "x")
        b = _category(body_factory=lambda rng: "y")
        assert a == b


class TestAlert:
    def test_from_record_copies_hot_fields(self):
        record = LogRecord(
            timestamp=7.0, source="n3", facility="kernel",
            body="boom happened", system="test",
        )
        alert = Alert.from_record(record, _category())
        assert alert.timestamp == 7.0
        assert alert.source == "n3"
        assert alert.category == "TESTCAT"
        assert alert.alert_type is AlertType.SOFTWARE
        assert alert.record is record


class TestRuleset:
    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            Ruleset(system="test", categories=(_category(), _category()))

    def test_rejects_foreign_categories(self):
        with pytest.raises(ValueError, match="belong"):
            Ruleset(system="other", categories=(_category(),))

    def test_get_and_names(self):
        ruleset = Ruleset(system="test", categories=(_category(),))
        assert ruleset.get("TESTCAT").pattern == "boom"
        assert ruleset.names() == ("TESTCAT",)

    def test_get_missing_raises(self):
        ruleset = Ruleset(system="test", categories=(_category(),))
        with pytest.raises(KeyError):
            ruleset.get("MISSING")

    def test_len_and_iter(self):
        ruleset = Ruleset(system="test", categories=(_category(),))
        assert len(ruleset) == 1
        assert [c.name for c in ruleset] == ["TESTCAT"]

"""Unit tests for the online log monitor."""

import pytest

from repro.core.categories import AlertType, CategoryDef, Ruleset
from repro.core.monitor import Disposition, LogMonitor
from repro.logmodel.record import LogRecord
from repro.simulation.opcontext import ContextTimeline, OperationalState

DAY = 86400.0


def _ruleset():
    return Ruleset(
        system="test",
        categories=(
            CategoryDef(
                name="DISK", system="test", alert_type=AlertType.HARDWARE,
                pattern=r"disk failure",
            ),
            CategoryDef(
                name="EXITED", system="test", alert_type=AlertType.INDETERMINATE,
                pattern=r"exited normally",
            ),
        ),
    )


def _record(t, body, source="n1"):
    return LogRecord(
        timestamp=t, source=source, facility="", body=body, system="test",
    )


class TestBasicFlow:
    def test_non_alert_records_emit_nothing(self):
        monitor = LogMonitor(_ruleset())
        assert monitor.observe(_record(1.0, "all quiet")) is None
        assert monitor.stats.records_seen == 1
        assert monitor.stats.alerts_tagged == 0

    def test_fresh_alert_pages(self):
        monitor = LogMonitor(_ruleset())
        event = monitor.observe(_record(1.0, "disk failure on sda"))
        assert event is not None
        assert event.disposition is Disposition.PAGE
        assert event.category == "DISK"
        assert monitor.stats.pages == 1

    def test_redundant_alerts_suppressed(self):
        monitor = LogMonitor(_ruleset())
        assert monitor.observe(_record(1.0, "disk failure")) is not None
        assert monitor.observe(_record(2.0, "disk failure")) is None
        assert monitor.observe(_record(3.0, "disk failure")) is None

    def test_next_fresh_event_reports_suppressed_count(self):
        monitor = LogMonitor(_ruleset())
        monitor.observe(_record(1.0, "disk failure"))
        monitor.observe(_record(2.0, "disk failure"))
        monitor.observe(_record(3.0, "disk failure"))
        event = monitor.observe(_record(100.0, "disk failure"))
        assert event is not None
        assert event.suppressed_count == 2


class TestStorms:
    def test_storm_event_once_per_chain(self):
        monitor = LogMonitor(_ruleset(), storm_threshold=5)
        monitor.observe(_record(0.0, "disk failure"))
        events = [
            monitor.observe(_record(0.5 * (k + 1), "disk failure"))
            for k in range(20)
        ]
        storms = [e for e in events if e is not None]
        assert len(storms) == 1
        assert storms[0].disposition is Disposition.STORM
        assert storms[0].suppressed_count == 5
        assert monitor.stats.storms == 1

    def test_storm_threshold_validation(self):
        with pytest.raises(ValueError):
            LogMonitor(_ruleset(), storm_threshold=0)


class TestDisambiguation:
    def _timeline(self):
        timeline = ContextTimeline(0.0, 10 * DAY)
        timeline.add_transition(
            5 * DAY, OperationalState.SCHEDULED_DOWNTIME, "maintenance"
        )
        return timeline

    def test_ambiguous_without_context_is_review(self):
        monitor = LogMonitor(_ruleset(), ambiguous_categories=["EXITED"])
        event = monitor.observe(_record(1.0, "ciodb exited normally"))
        assert event.disposition is Disposition.REVIEW

    def test_ambiguous_in_downtime_is_log_only(self):
        monitor = LogMonitor(
            _ruleset(), timeline=self._timeline(),
            ambiguous_categories=["EXITED"],
        )
        event = monitor.observe(
            _record(6 * DAY, "ciodb exited normally")
        )
        assert event.disposition is Disposition.LOG_ONLY

    def test_ambiguous_in_production_pages(self):
        monitor = LogMonitor(
            _ruleset(), timeline=self._timeline(),
            ambiguous_categories=["EXITED"],
        )
        event = monitor.observe(_record(1 * DAY, "ciodb exited normally"))
        assert event.disposition is Disposition.PAGE

    def test_unambiguous_category_ignores_context(self):
        monitor = LogMonitor(
            _ruleset(), timeline=self._timeline(),
            ambiguous_categories=["EXITED"],
        )
        event = monitor.observe(_record(6 * DAY, "disk failure"))
        assert event.disposition is Disposition.PAGE


class TestRunOverStream:
    def test_run_yields_events_in_order(self):
        monitor = LogMonitor(_ruleset())
        records = [
            _record(1.0, "disk failure"),
            _record(2.0, "noise"),
            _record(100.0, "disk failure"),
        ]
        events = list(monitor.run(records))
        assert [e.timestamp for e in events] == [1.0, 100.0]

    def test_monitor_agrees_with_batch_pipeline(self, liberty_result):
        """Online monitoring must produce exactly the batch filter's
        survivors (plus storms, which the batch path has no analog for)."""
        from repro.core.rules import get_ruleset
        from repro.simulation.generator import generate_log

        from ..conftest import SEED, SMALL_SCALE

        monitor = LogMonitor(
            get_ruleset("liberty"), storm_threshold=10**9,
        )
        records = generate_log("liberty", scale=SMALL_SCALE, seed=SEED).records
        events = list(monitor.run(records))
        assert len(events) == liberty_result.filtered_alert_count
        assert monitor.stats.alerts_tagged == liberty_result.raw_alert_count

"""Unit tests for failure-report attribution."""

import pytest

from repro.core.attribution import (
    attribution_summary,
    build_failure_reports,
)
from repro.core.categories import AlertType
from repro.core.filtering import sorted_by_time

from ..conftest import make_alert


def _cascade():
    """A hardware fault followed by software symptoms across nodes."""
    return sorted_by_time(
        [
            make_alert(100.0, source="nic3", category="GM_PAR",
                       alert_type=AlertType.HARDWARE),
            make_alert(105.0, source="n1", category="GM_LANAI",
                       alert_type=AlertType.SOFTWARE),
            make_alert(108.0, source="n2", category="GM_LANAI",
                       alert_type=AlertType.SOFTWARE),
            make_alert(112.0, source="n1", category="PBS_CHK",
                       alert_type=AlertType.SOFTWARE),
        ]
    )


class TestBuildReports:
    def test_clusters_by_window(self):
        alerts = _cascade() + [make_alert(5000.0, category="ECC",
                                          alert_type=AlertType.HARDWARE)]
        reports = build_failure_reports(sorted_by_time(alerts), window=60.0)
        assert len(reports) == 2
        assert reports[0].alert_count == 4
        assert reports[1].alert_count == 1

    def test_cascade_detection(self):
        (report,) = build_failure_reports(_cascade(), window=60.0)
        assert report.is_cascade
        assert report.is_shared_resource
        assert dict(report.categories)["GM_LANAI"] == 2

    def test_root_cause_prefers_earliest_hardware(self):
        (report,) = build_failure_reports(_cascade(), window=60.0)
        assert report.root_cause_candidate.category == "GM_PAR"
        assert report.root_cause_candidate.source == "nic3"

    def test_root_cause_falls_back_to_first_alert(self):
        alerts = sorted_by_time(
            [
                make_alert(1.0, category="PBS_CHK",
                           alert_type=AlertType.SOFTWARE),
                make_alert(2.0, category="PBS_BFD",
                           alert_type=AlertType.SOFTWARE),
            ]
        )
        (report,) = build_failure_reports(alerts, window=60.0)
        assert report.root_cause_candidate.category == "PBS_CHK"

    def test_correlated_group_annotation(self):
        groups = [frozenset({"GM_PAR", "GM_LANAI"})]
        (report,) = build_failure_reports(_cascade(), window=60.0,
                                          groups=groups)
        assert report.correlated_group == frozenset({"GM_PAR", "GM_LANAI"})

    def test_single_category_report_not_annotated(self):
        alerts = [make_alert(1.0, category="ECC")]
        (report,) = build_failure_reports(
            alerts, groups=[frozenset({"GM_PAR", "GM_LANAI"})]
        )
        assert report.correlated_group is None
        assert not report.is_cascade

    def test_min_alerts_filter(self):
        alerts = _cascade() + [make_alert(9999.0)]
        reports = build_failure_reports(
            sorted_by_time(alerts), window=60.0, min_alerts=2
        )
        assert len(reports) == 1

    def test_headline(self):
        (report,) = build_failure_reports(_cascade(), window=60.0)
        text = report.headline()
        assert "GM_PAR on nic3" in text
        assert "cascade" in text

    def test_empty(self):
        assert build_failure_reports([]) == []


class TestSummary:
    def test_aggregates(self):
        alerts = _cascade() + [make_alert(5000.0)]
        reports = build_failure_reports(sorted_by_time(alerts), window=60.0)
        summary = attribution_summary(reports)
        assert summary["reports"] == 2
        assert summary["cascades"] == 1
        assert summary["cascade_fraction"] == pytest.approx(0.5)
        assert summary["mean_alerts_per_failure"] == pytest.approx(2.5)

    def test_empty(self):
        assert attribution_summary([])["reports"] == 0


class TestOnGeneratedData:
    def test_liberty_pbs_cascades_found(self, liberty_result):
        """On generated Liberty data the PBS_CHK/PBS_BFD pairs show up as
        cascading reports."""
        reports = build_failure_reports(
            liberty_result.raw_alerts, window=120.0
        )
        assert reports
        cascades = [r for r in reports if r.is_cascade]
        pair_cascades = [
            r for r in cascades
            if {"PBS_CHK", "PBS_BFD"} <= set(dict(r.categories))
        ]
        assert pair_cascades

"""Unit tests for the severity-based tagging baseline."""

from repro.core.severity import SeverityTagger, SeverityTaggerConfig
from repro.logmodel.record import LogRecord, RasSeverity, SyslogSeverity


def _record(severity=None):
    return LogRecord(
        timestamp=1.0, source="n1", facility="kernel", body="x",
        severity=severity,
    )


class TestConfigs:
    def test_bgl_fatal_failure(self):
        config = SeverityTaggerConfig.bgl_fatal_failure()
        assert config.alert_labels == frozenset({"FATAL", "FAILURE"})

    def test_syslog_at_least(self):
        config = SeverityTaggerConfig.syslog_at_least(SyslogSeverity.CRIT)
        assert config.alert_labels == frozenset({"EMERG", "ALERT", "CRIT"})

    def test_ras_at_least(self):
        config = SeverityTaggerConfig.ras_at_least(RasSeverity.SEVERE)
        assert config.alert_labels == frozenset({"FATAL", "FAILURE", "SEVERE"})


class TestTagger:
    def test_default_is_bgl_rule(self):
        tagger = SeverityTagger()
        assert tagger.is_alert(_record("FATAL"))
        assert tagger.is_alert(_record("FAILURE"))
        assert not tagger.is_alert(_record("SEVERE"))

    def test_records_without_severity_never_tagged(self):
        """Three of the five machines record no severity — the baseline is
        structurally blind there (Section 3.2)."""
        tagger = SeverityTagger()
        assert not tagger.is_alert(_record(None))

    def test_tag_stream(self):
        tagger = SeverityTagger()
        records = [_record("FATAL"), _record("INFO"), _record(None)]
        assert len(list(tagger.tag_stream(records))) == 1

    def test_custom_config(self):
        tagger = SeverityTagger(
            SeverityTaggerConfig.syslog_at_least(SyslogSeverity.ERR)
        )
        assert tagger.is_alert(_record("CRIT"))
        assert tagger.is_alert(_record("ERR"))
        assert not tagger.is_alert(_record("WARNING"))

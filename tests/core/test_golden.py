"""Golden regression corpus: frozen end-to-end expectations per system.

Each fixture pair under ``tests/fixtures/golden/`` is a small
deterministic log in the system's native on-disk format plus the exact
pipeline output recorded when it was generated (every raw and filtered
alert, volume stats, severity cross-tab).  Any behavioral drift in the
parsers, expert rules, or the spatio-temporal filter fails here with a
diff pointing at the exact alert that moved.  Regenerate — only when the
change is intended — with ``PYTHONPATH=src python scripts/make_golden.py``
and commit the new expectations alongside the change that caused them.

The corpus is run through both the serial path and the parallel path so
a drift confined to the sharded lane cannot hide either.
"""

import json
from pathlib import Path

import pytest

from repro import api as pipeline
from repro.logio.reader import read_log
from repro.parallel import ParallelConfig
from repro.systems.specs import SYSTEMS

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "golden"
ALL_SYSTEMS = sorted(SYSTEMS)


def load_expected(system):
    path = GOLDEN_DIR / f"{system}.expected.json"
    return json.loads(path.read_text(encoding="utf-8"))


def run_golden(system, parallel=None):
    expected = load_expected(system)
    records = read_log(GOLDEN_DIR / f"{system}.log", system,
                       year=expected["year"])
    return expected, pipeline.run_stream(records, system, parallel=parallel)


def alert_rows(alerts):
    return [[round(a.timestamp, 6), a.source, a.category,
             a.alert_type.value] for a in alerts]


def assert_matches_expected(expected, result):
    assert result.stats.messages == expected["messages"]
    assert result.corrupted_messages == expected["corrupted"]
    assert result.raw_alert_count == expected["raw_alert_count"]
    assert result.filtered_alert_count == expected["filtered_alert_count"]
    assert result.observed_categories == expected["observed_categories"]
    assert {cat: counts for cat, counts
            in result.category_counts().items()} == \
        expected["category_counts"]
    assert dict(result.severity_tab.messages) == \
        expected["severity_messages"]
    assert dict(result.severity_tab.alerts) == expected["severity_alerts"]
    assert alert_rows(result.raw_alerts) == expected["raw_alerts"]
    assert alert_rows(result.filtered_alerts) == expected["filtered_alerts"]


class TestGoldenCorpus:
    def test_corpus_is_complete(self):
        """Every system has both halves of its fixture pair."""
        for system in ALL_SYSTEMS:
            assert (GOLDEN_DIR / f"{system}.log").is_file()
            assert (GOLDEN_DIR / f"{system}.expected.json").is_file()

    def test_corpus_exercises_the_rules(self):
        """A fixture with no alerts regression-tests nothing: every
        system's expectations must contain real tagged output."""
        for system in ALL_SYSTEMS:
            expected = load_expected(system)
            assert expected["raw_alert_count"] > 0, system
            assert expected["filtered_alert_count"] > 0, system

    def test_filter_does_real_work_somewhere(self):
        """At least one fixture must show raw > filtered, or the corpus
        would never notice Algorithm 3.1 regressing to a no-op."""
        assert any(
            load_expected(s)["raw_alert_count"]
            > load_expected(s)["filtered_alert_count"]
            for s in ALL_SYSTEMS
        )

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_serial_output_matches_golden(self, system):
        expected, result = run_golden(system)
        assert_matches_expected(expected, result)

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_parallel_output_matches_golden(self, system, env_workers):
        expected, result = run_golden(
            system,
            parallel=ParallelConfig(workers=env_workers, batch_size=128),
        )
        assert_matches_expected(expected, result)
        assert result.shard_stats is not None
        assert result.shard_stats.records == expected["messages"]

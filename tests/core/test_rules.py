"""Tests over the 77 expert rules: coverage, self-match, non-collision.

These pin the reproduction to the paper's Table 2/4 structure: category
counts per system, the 41+10+12+8+6 split, type assignments, and the
bidirectional contract between generators and rules (every generated body
matches its own rule; no background template matches any rule).
"""

import numpy as np
import pytest

from repro.core.categories import AlertType
from repro.core.rules import RULESETS, TOTAL_CATEGORIES, get_ruleset
from repro.core.rules.bgl import OTHER_NAMES
from repro.core.tagging import Tagger
from repro.logmodel.record import Channel, LogRecord
from repro.simulation.background import pool_for
from repro.simulation.calibration import SCENARIOS

EXPECTED_COUNTS = {
    "bgl": 41,
    "thunderbird": 10,
    "redstorm": 12,
    "spirit": 8,
    "liberty": 6,
}


def test_total_is_77_categories():
    assert TOTAL_CATEGORIES == 77


@pytest.mark.parametrize("system,count", sorted(EXPECTED_COUNTS.items()))
def test_per_system_category_counts(system, count):
    assert len(get_ruleset(system)) == count


def test_bgl_has_31_others():
    assert len(OTHER_NAMES) == 31


def test_unknown_system_raises():
    with pytest.raises(KeyError, match="valid"):
        get_ruleset("asci-red")


@pytest.mark.parametrize("system", sorted(RULESETS))
def test_every_rule_matches_its_own_bodies(system):
    """Generator -> tagger round trip: each category's body factory output
    is tagged back to that same category (no shadowing by earlier rules)."""
    rng = np.random.default_rng(99)
    ruleset = get_ruleset(system)
    tagger = Tagger(ruleset)
    for category in ruleset:
        for _ in range(5):
            body = category.make_body(rng)
            if category.channel is Channel.RAS_TCP:
                body = f"src:::c0-0c0s0n0 svc:::c0-0c0s0n0 {body}"
            record = LogRecord(
                timestamp=1.0,
                source="node1",
                facility=category.facility,
                body=body,
                system=system,
                severity=category.severity,
                channel=category.channel,
            )
            matched = tagger.match(record)
            assert matched is not None, (category.name, record.full_text())
            assert matched.name == category.name, (
                f"{category.name} shadowed by {matched.name}"
            )


@pytest.mark.parametrize("system", sorted(RULESETS))
def test_examples_match_their_own_rule(system):
    """The Table 4 example strings themselves are taggable."""
    ruleset = get_ruleset(system)
    tagger = Tagger(ruleset)
    for category in ruleset:
        record = LogRecord(
            timestamp=1.0,
            source="node1",
            facility=category.facility,
            body=category.example
            if category.channel is not Channel.RAS_TCP
            else f"src:::n0 svc:::n0 {category.example}",
            system=system,
            severity=category.severity,
            channel=category.channel,
        )
        matched = tagger.match(record)
        assert matched is not None and matched.name == category.name


@pytest.mark.parametrize("system", sorted(RULESETS))
def test_background_never_matches_any_rule(system):
    """Non-alert chaff must stay untaggable, or Table 2's alert counts
    would drift with background volume."""
    tagger = Tagger(get_ruleset(system))
    scenario = SCENARIOS[system]
    for spec in scenario.background:
        pool = pool_for(system, spec.severity, spec.channel)
        for facility, body in pool:
            record_body = body
            if spec.channel is Channel.RAS_TCP:
                record_body = f"src:::n0 svc:::n0 {body}"
            record = LogRecord(
                timestamp=1.0,
                source="node1",
                facility=facility,
                body=record_body,
                system=system,
                severity=spec.severity,
                channel=spec.channel,
            )
            matched = tagger.match(record)
            assert matched is None, (
                f"background {facility}: {body!r} tagged as {matched and matched.name}"
            )


def test_bgl_severity_split_matches_table5():
    """All BG/L alert rules carry FATAL except MASNORM (FAILURE) — the
    348,398 + 62 split of Table 5."""
    for category in get_ruleset("bgl"):
        if category.name == "MASNORM":
            assert category.severity == "FAILURE"
        else:
            assert category.severity == "FATAL"


def test_redstorm_severity_assignments_match_table6():
    """BUS_PAR is the CRIT disk storm; Lustre errors are ERR; watchdogs
    WARNING; RAS-path events carry no severity."""
    ruleset = get_ruleset("redstorm")
    assert ruleset.get("BUS_PAR").severity == "CRIT"
    for name in ("PTL_EXP", "PTL_ERR", "RBB", "OST"):
        assert ruleset.get(name).severity == "ERR"
    for name in ("EW", "WT"):
        assert ruleset.get(name).severity == "WARNING"
    for name in ("HBEAT", "TOAST"):
        assert ruleset.get(name).severity is None
        assert ruleset.get(name).channel is Channel.RAS_TCP


def test_sandia_commodity_systems_record_no_severity():
    """Thunderbird, Spirit, and Liberty 'did not even record this
    information' (Section 3.2)."""
    for system in ("thunderbird", "spirit", "liberty"):
        for category in get_ruleset(system):
            assert category.severity is None


def test_type_assignments_from_table4():
    """Spot-check the H/S/I codes the paper's Table 4 lists."""
    checks = [
        ("bgl", "KERNDTLB", AlertType.HARDWARE),
        ("bgl", "APPSEV", AlertType.SOFTWARE),
        ("bgl", "APPUNAV", AlertType.INDETERMINATE),
        ("thunderbird", "VAPI", AlertType.INDETERMINATE),
        ("thunderbird", "ECC", AlertType.HARDWARE),
        ("redstorm", "BUS_PAR", AlertType.HARDWARE),
        ("redstorm", "HBEAT", AlertType.INDETERMINATE),
        ("spirit", "EXT_CCISS", AlertType.HARDWARE),
        ("spirit", "PBS_CHK", AlertType.SOFTWARE),
        ("liberty", "GM_PAR", AlertType.HARDWARE),
        ("liberty", "PBS_CHK", AlertType.SOFTWARE),
    ]
    for system, name, expected in checks:
        assert get_ruleset(system).get(name).alert_type is expected


def test_bgl_others_are_all_indeterminate():
    """Table 4 aggregates them as 'I / 31 Others'."""
    ruleset = get_ruleset("bgl")
    for name in OTHER_NAMES:
        assert ruleset.get(name).alert_type is AlertType.INDETERMINATE


def test_paper_awk_rule_examples_still_hold():
    """Section 3.2 lists three example admin rules; our rulesets tag the
    same texts."""
    spirit = Tagger(get_ruleset("spirit"))
    record = LogRecord(
        timestamp=1.0, source="sn1", facility="kernel",
        body="EXT3-fs error (device cciss/c0d0p5)", system="spirit",
    )
    assert spirit.match(record).name == "EXT_FS"

    redstorm = Tagger(get_ruleset("redstorm"))
    record = LogRecord(
        timestamp=1.0, source="c0-0c0s0n0", facility="ec_console_log",
        body="src:::n0 svc:::n0 PANIC_SP WE ARE TOASTED!", system="redstorm",
        channel=Channel.RAS_TCP,
    )
    assert redstorm.match(record).name == "TOAST"

    bgl = Tagger(get_ruleset("bgl"))
    record = LogRecord(
        timestamp=1.0, source="R00-M0-N0", facility="KERNEL",
        body="kernel panic", system="bgl", severity="FATAL",
        channel=Channel.JTAG_MAILBOX,
    )
    assert bgl.match(record).name == "KERNPAN"

"""Unit tests for the tagging engine."""

import re

from repro.core.categories import AlertType, CategoryDef, Ruleset
from repro.core.tagging import (
    RulesetHandle,
    Tagger,
    count_by_category,
    count_by_type,
    observed_categories,
    scoped_pattern,
)
from repro.logmodel.record import LogRecord


def _ruleset():
    return Ruleset(
        system="test",
        categories=(
            CategoryDef(
                name="SPECIFIC", system="test",
                alert_type=AlertType.HARDWARE,
                pattern=r"disk error on sda", facility="kernel",
            ),
            CategoryDef(
                name="GENERAL", system="test",
                alert_type=AlertType.SOFTWARE,
                pattern=r"disk error", facility="kernel",
            ),
        ),
    )


def _record(body, **overrides):
    defaults = dict(
        timestamp=1.0, source="n1", facility="kernel", body=body,
        system="test",
    )
    defaults.update(overrides)
    return LogRecord(**defaults)


class TestTagger:
    def test_first_match_wins(self):
        """logsurfer semantics: the more specific rule listed first wins."""
        tagger = Tagger(_ruleset())
        assert tagger.match(_record("disk error on sda")).name == "SPECIFIC"
        assert tagger.match(_record("disk error on sdb")).name == "GENERAL"

    def test_non_matching_record_is_none(self):
        tagger = Tagger(_ruleset())
        assert tagger.tag(_record("all quiet")) is None

    def test_pattern_sees_facility_prefix(self):
        ruleset = Ruleset(
            system="test",
            categories=(
                CategoryDef(
                    name="PBS", system="test",
                    alert_type=AlertType.SOFTWARE,
                    pattern=r"^pbs_mom: task_check",
                ),
            ),
        )
        tagger = Tagger(ruleset)
        hit = _record("task_check, cannot tm_reply", facility="pbs_mom")
        miss = _record("task_check, cannot tm_reply", facility="kernel")
        assert tagger.match(hit) is not None
        assert tagger.match(miss) is None

    def test_corrupted_record_can_still_be_tagged(self):
        """A truncated line that kept its signature is still an alert
        (Section 3.2.1's corrupted VAPI variants)."""
        tagger = Tagger(_ruleset())
        record = _record("disk error on").with_corruption(body="disk error on")
        assert tagger.match(record).name == "GENERAL"

    def test_tag_stream_yields_only_alerts(self):
        tagger = Tagger(_ruleset())
        records = [_record("quiet"), _record("disk error"), _record("quiet")]
        alerts = list(tagger.tag_stream(records))
        assert len(alerts) == 1
        assert alerts[0].category == "GENERAL"

    def test_tag_stream_with_stats(self):
        tagger = Tagger(_ruleset())
        records = [
            _record("quiet"),
            _record("disk error"),
            _record("junk").with_corruption(body="junk"),
        ]
        alerts = list(tagger.tag_stream_with_stats(records))
        assert len(alerts) == 1
        assert tagger.last_stats == {
            "messages": 3, "alerts": 1, "corrupted": 1,
        }


class TestPrefilterEquivalence:
    def test_prefilter_preserves_first_match_semantics(self):
        """The combined-alternation reject filter must never change which
        rule wins — differential check against a prefilter-free scan over
        every ruleset's generated bodies and background chaff."""
        import numpy as np

        from repro.core.rules import RULESETS
        from repro.logmodel.record import Channel
        from repro.simulation.background import pool_for
        from repro.simulation.calibration import SCENARIOS

        rng = np.random.default_rng(2)
        for system, ruleset in RULESETS.items():
            tagger = Tagger(ruleset)
            reference = Tagger(ruleset)
            reference._prefilter = None  # disable the fast path
            probes = []
            for cat in ruleset:
                body = cat.make_body(rng)
                if cat.channel is Channel.RAS_TCP:
                    body = f"src:::n0 svc:::n0 {body}"
                probes.append(
                    LogRecord(
                        timestamp=1.0, source="n1", facility=cat.facility,
                        body=body, system=system, severity=cat.severity,
                        channel=cat.channel,
                    )
                )
            for spec in SCENARIOS[system].background:
                for facility, body in pool_for(system, spec.severity,
                                               spec.channel):
                    probes.append(
                        LogRecord(
                            timestamp=1.0, source="n1", facility=facility,
                            body=body, system=system,
                        )
                    )
            for record in probes:
                fast = tagger.match(record)
                slow = reference.match(record)
                assert (fast is None) == (slow is None)
                if fast is not None:
                    assert fast.name == slow.name


class TestPrefilterFlags:
    """Regression: the combined prefilter must carry per-rule flags.

    Joining raw pattern strings with ``|`` dropped ``CategoryDef.flags``
    entirely, and a ``(?i)``-prefixed rule in any non-first position is a
    compile error on Python 3.11+ (global flags mid-expression).
    """

    def _flagged_ruleset(self):
        return Ruleset(
            system="test",
            categories=(
                CategoryDef(
                    name="CASED", system="test",
                    alert_type=AlertType.HARDWARE,
                    pattern=r"ECC error", facility="kernel",
                ),
                CategoryDef(
                    name="LOOSE", system="test",
                    alert_type=AlertType.SOFTWARE,
                    pattern=r"link failure", facility="kernel",
                    flags=re.IGNORECASE,
                ),
            ),
        )

    def test_flagged_rule_survives_prefilter(self):
        tagger = Tagger(self._flagged_ruleset())
        hit = _record("LINK FAILURE on port 3")
        # Sanity: the compiled per-rule pattern matches...
        assert tagger.ruleset.get("LOOSE").compiled().search(hit.full_text())
        # ...and the prefilter does not silently reject it first.
        assert tagger.match(hit).name == "LOOSE"

    def test_flags_stay_scoped_to_their_rule(self):
        tagger = Tagger(self._flagged_ruleset())
        # The case-sensitive rule must not inherit IGNORECASE from its
        # neighbor via the combined alternation.
        assert tagger.match(_record("ecc ERROR")) is None
        assert tagger.match(_record("ECC error")).name == "CASED"

    def test_inline_global_flag_prefix_compiles_and_scopes(self):
        """A logsurfer-style ``(?i)``-prefixed pattern in non-first
        position must neither crash prefilter compilation (Python 3.11+)
        nor leak case-insensitivity to other rules."""
        ruleset = Ruleset(
            system="test",
            categories=(
                CategoryDef(
                    name="STRICT", system="test",
                    alert_type=AlertType.HARDWARE,
                    pattern=r"panic", facility="kernel",
                ),
                CategoryDef(
                    name="RELAXED", system="test",
                    alert_type=AlertType.SOFTWARE,
                    pattern=r"(?i)fatal error", facility="kernel",
                ),
            ),
        )
        tagger = Tagger(ruleset)
        assert tagger.match(_record("FATAL ERROR in ciod")).name == "RELAXED"
        assert tagger.match(_record("PANIC")) is None
        assert tagger.match(_record("panic")).name == "STRICT"

    def test_scoped_pattern_shapes(self):
        plain = CategoryDef(name="A", system="t",
                            alert_type=AlertType.HARDWARE, pattern=r"x+")
        flagged = CategoryDef(name="B", system="t",
                              alert_type=AlertType.HARDWARE, pattern=r"x+",
                              flags=re.IGNORECASE | re.DOTALL)
        inlined = CategoryDef(name="C", system="t",
                              alert_type=AlertType.HARDWARE,
                              pattern=r"(?im)x+")
        assert scoped_pattern(plain) == "(?:x+)"
        assert scoped_pattern(flagged) == "(?is:x+)"
        assert scoped_pattern(inlined) == "(?im:x+)"


class TestBatchAPI:
    def test_tag_batch_matches_tag_stream(self):
        tagger = Tagger(_ruleset())
        records = [
            _record("quiet"),
            _record("disk error on sda"),
            _record("disk error"),
            _record("nothing"),
        ]
        outcome = tagger.tag_batch(records)
        assert outcome.size == 4
        assert [i for i, _ in outcome.hits] == [1, 2]
        assert [a.category for _, a in outcome.hits] == ["SPECIFIC", "GENERAL"]
        assert outcome.errors == ()
        assert [a for _, a in outcome.hits] == list(tagger.tag_stream(records))

    def test_tag_batch_captures_per_record_errors(self):
        tagger = Tagger(_ruleset())
        records = [
            _record("disk error"),
            # Non-string body with no facility prefix reaches the regex
            # engine raw and crashes the match.
            _record(12345, facility=""),
            _record("quiet"),
        ]
        outcome = tagger.tag_batch(records)
        assert outcome.size == 3
        assert [i for i, _ in outcome.hits] == [0]
        assert [i for i, _ in outcome.errors] == [1]
        assert "TypeError" in outcome.error_map()[1]

    def test_ruleset_handle_resolves_and_pickles(self):
        import pickle

        handle = RulesetHandle("liberty")
        clone = pickle.loads(pickle.dumps(handle))
        assert clone == handle
        tagger = clone.tagger()
        assert tagger.ruleset.system == "liberty"


class TestCounters:
    def _alerts(self):
        tagger = Tagger(_ruleset())
        bodies = ["disk error on sda", "disk error", "disk error", "quiet"]
        return list(tagger.tag_stream(_record(b) for b in bodies))

    def test_count_by_category(self):
        assert count_by_category(self._alerts()) == {
            "SPECIFIC": 1, "GENERAL": 2,
        }

    def test_count_by_type(self):
        assert count_by_type(self._alerts()) == {"H": 1, "S": 2}

    def test_observed_categories(self):
        assert observed_categories(self._alerts()) == 2
        assert observed_categories([]) == 0

"""Unit tests for the tagging engine."""

from repro.core.categories import AlertType, CategoryDef, Ruleset
from repro.core.tagging import (
    Tagger,
    count_by_category,
    count_by_type,
    observed_categories,
)
from repro.logmodel.record import LogRecord


def _ruleset():
    return Ruleset(
        system="test",
        categories=(
            CategoryDef(
                name="SPECIFIC", system="test",
                alert_type=AlertType.HARDWARE,
                pattern=r"disk error on sda", facility="kernel",
            ),
            CategoryDef(
                name="GENERAL", system="test",
                alert_type=AlertType.SOFTWARE,
                pattern=r"disk error", facility="kernel",
            ),
        ),
    )


def _record(body, **overrides):
    defaults = dict(
        timestamp=1.0, source="n1", facility="kernel", body=body,
        system="test",
    )
    defaults.update(overrides)
    return LogRecord(**defaults)


class TestTagger:
    def test_first_match_wins(self):
        """logsurfer semantics: the more specific rule listed first wins."""
        tagger = Tagger(_ruleset())
        assert tagger.match(_record("disk error on sda")).name == "SPECIFIC"
        assert tagger.match(_record("disk error on sdb")).name == "GENERAL"

    def test_non_matching_record_is_none(self):
        tagger = Tagger(_ruleset())
        assert tagger.tag(_record("all quiet")) is None

    def test_pattern_sees_facility_prefix(self):
        ruleset = Ruleset(
            system="test",
            categories=(
                CategoryDef(
                    name="PBS", system="test",
                    alert_type=AlertType.SOFTWARE,
                    pattern=r"^pbs_mom: task_check",
                ),
            ),
        )
        tagger = Tagger(ruleset)
        hit = _record("task_check, cannot tm_reply", facility="pbs_mom")
        miss = _record("task_check, cannot tm_reply", facility="kernel")
        assert tagger.match(hit) is not None
        assert tagger.match(miss) is None

    def test_corrupted_record_can_still_be_tagged(self):
        """A truncated line that kept its signature is still an alert
        (Section 3.2.1's corrupted VAPI variants)."""
        tagger = Tagger(_ruleset())
        record = _record("disk error on").with_corruption(body="disk error on")
        assert tagger.match(record).name == "GENERAL"

    def test_tag_stream_yields_only_alerts(self):
        tagger = Tagger(_ruleset())
        records = [_record("quiet"), _record("disk error"), _record("quiet")]
        alerts = list(tagger.tag_stream(records))
        assert len(alerts) == 1
        assert alerts[0].category == "GENERAL"

    def test_tag_stream_with_stats(self):
        tagger = Tagger(_ruleset())
        records = [
            _record("quiet"),
            _record("disk error"),
            _record("junk").with_corruption(body="junk"),
        ]
        alerts = list(tagger.tag_stream_with_stats(records))
        assert len(alerts) == 1
        assert tagger.last_stats == {
            "messages": 3, "alerts": 1, "corrupted": 1,
        }


class TestPrefilterEquivalence:
    def test_prefilter_preserves_first_match_semantics(self):
        """The combined-alternation reject filter must never change which
        rule wins — differential check against a prefilter-free scan over
        every ruleset's generated bodies and background chaff."""
        import numpy as np

        from repro.core.rules import RULESETS
        from repro.logmodel.record import Channel
        from repro.simulation.background import pool_for
        from repro.simulation.calibration import SCENARIOS

        rng = np.random.default_rng(2)
        for system, ruleset in RULESETS.items():
            tagger = Tagger(ruleset)
            reference = Tagger(ruleset)
            reference._prefilter = None  # disable the fast path
            probes = []
            for cat in ruleset:
                body = cat.make_body(rng)
                if cat.channel is Channel.RAS_TCP:
                    body = f"src:::n0 svc:::n0 {body}"
                probes.append(
                    LogRecord(
                        timestamp=1.0, source="n1", facility=cat.facility,
                        body=body, system=system, severity=cat.severity,
                        channel=cat.channel,
                    )
                )
            for spec in SCENARIOS[system].background:
                for facility, body in pool_for(system, spec.severity,
                                               spec.channel):
                    probes.append(
                        LogRecord(
                            timestamp=1.0, source="n1", facility=facility,
                            body=body, system=system,
                        )
                    )
            for record in probes:
                fast = tagger.match(record)
                slow = reference.match(record)
                assert (fast is None) == (slow is None)
                if fast is not None:
                    assert fast.name == slow.name


class TestCounters:
    def _alerts(self):
        tagger = Tagger(_ruleset())
        bodies = ["disk error on sda", "disk error", "disk error", "quiet"]
        return list(tagger.tag_stream(_record(b) for b in bodies))

    def test_count_by_category(self):
        assert count_by_category(self._alerts()) == {
            "SPECIFIC": 1, "GENERAL": 2,
        }

    def test_count_by_type(self):
        assert count_by_type(self._alerts()) == {"H": 1, "S": 2}

    def test_observed_categories(self):
        assert observed_categories(self._alerts()) == 2
        assert observed_categories([]) == 0

"""Tests for the single composition table the pipeline and CLI share."""

from __future__ import annotations

import pytest

from repro.engine.capabilities import (
    BYTE_IDENTICAL,
    CAPABILITY_TABLE,
    SHED_TOLERANCE,
    build_driver,
    capabilities_for,
    capability_lines,
    driver_name,
    validate_run_config,
)
from repro.engine.drivers import BoundedDriver, SerialDriver, ShardedDriver
from repro.parallel.config import ParallelConfig
from repro.resilience.backpressure import BackpressureConfig

PAR = ParallelConfig(workers=2, batch_size=64)
BP = BackpressureConfig()


class TestDriverSelection:
    @pytest.mark.parametrize("parallel,backpressure,expected", [
        (None, None, "serial"),
        (PAR, None, "sharded"),
        (None, BP, "bounded"),
        (PAR, BP, "bounded-sharded"),
    ])
    def test_driver_name(self, parallel, backpressure, expected):
        assert driver_name(parallel, backpressure) == expected
        assert capabilities_for(parallel, backpressure).name == expected
        assert build_driver(parallel, backpressure).name == expected

    def test_driver_types(self):
        assert isinstance(build_driver(), SerialDriver)
        assert isinstance(build_driver(parallel=PAR), ShardedDriver)
        assert isinstance(build_driver(backpressure=BP), BoundedDriver)
        both = build_driver(parallel=PAR, backpressure=BP)
        assert isinstance(both, BoundedDriver)
        assert both.parallel is PAR


class TestCapabilityTable:
    def test_every_driver_has_a_row(self):
        assert set(CAPABILITY_TABLE) == {
            "serial", "sharded", "bounded", "bounded-sharded", "service",
            "serial-predict",
        }

    def test_equivalence_guarantees(self):
        assert CAPABILITY_TABLE["serial"].equivalence == BYTE_IDENTICAL
        assert CAPABILITY_TABLE["sharded"].equivalence == BYTE_IDENTICAL
        assert CAPABILITY_TABLE["bounded"].equivalence == SHED_TOLERANCE
        assert CAPABILITY_TABLE["bounded-sharded"].equivalence == \
            SHED_TOLERANCE
        assert CAPABILITY_TABLE["service"].equivalence == SHED_TOLERANCE
        assert CAPABILITY_TABLE["serial-predict"].equivalence == \
            BYTE_IDENTICAL

    def test_checkpoint_barriers(self):
        assert CAPABILITY_TABLE["serial"].checkpoint_barrier == "record"
        assert CAPABILITY_TABLE["sharded"].checkpoint_barrier == "batch"
        assert CAPABILITY_TABLE["bounded"].checkpoint_barrier == \
            "drained-queues"

    def test_capability_lines_render_every_row(self):
        lines = capability_lines()
        # Header + one row per driver + the durable --state-dir footnote.
        assert len(lines) >= 1 + len(CAPABILITY_TABLE)
        text = "\n".join(lines)
        for name in CAPABILITY_TABLE:
            assert name in text
        assert "--state-dir" in text


class TestValidation:
    def test_all_driver_combinations_legal(self):
        for parallel in (None, PAR):
            for backpressure in (None, BP):
                caps = validate_run_config(
                    parallel=parallel, backpressure=backpressure,
                )
                assert caps.name == driver_name(parallel, backpressure)

    def test_restart_budget_requires_supervision(self):
        with pytest.raises(ValueError, match="restart_budget"):
            validate_run_config(restart_budget=3)

    def test_restart_budget_ok_when_supervised(self):
        validate_run_config(restart_budget=3, supervised=True)
        validate_run_config(restart_budget=3, faults=object())

    def test_checkpoint_every_must_be_positive(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            validate_run_config(checkpoint_every=0)
        validate_run_config(checkpoint_every=1)

"""The composition matrix: every driver combination against the serial
baseline, over the full golden corpus.

This is the acceptance suite for the stage engine: {serial, sharded}
execution crossed with {plain, checkpoint + crash + resume, backpressure,
supervised + injected faults} must reproduce the serial reference output
exactly — same alerts in the same order, same volume statistics down to
the compressed byte, same severity cross-tabs.  (Bounded runs here use
pausable sources and roomy buffers, so the shedding tolerance the
capability table documents collapses to exact equality; the shedding
behavior itself is covered in ``tests/resilience/``.)

Before the engine, three of these eight cells were unreachable —
``run_stream`` refused parallel x checkpoint and parallel x backpressure
outright — so this file is also the regression net for the compositions
the refactor made legal.
"""

from __future__ import annotations

import pytest

from repro import api as pipeline
from repro.parallel.config import ParallelConfig
from repro.resilience.backpressure import BackpressureConfig
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.faults import FaultConfig
from repro.resilience.supervisor import PipelineSupervisor

from .conftest import ALL_SYSTEMS, assert_equivalent

CHECKPOINT_EVERY = 50


class MidStreamCrash(Exception):
    pass


def crash_after(records, at):
    """Re-present ``records`` but die after ``at`` of them."""
    for index, record in enumerate(records):
        if index == at:
            raise MidStreamCrash(f"injected crash at record {at}")
        yield record


def parallel_config(env_workers):
    return ParallelConfig(workers=env_workers, batch_size=64)


def drivers(env_workers):
    return {"serial": None, "sharded": parallel_config(env_workers)}


@pytest.mark.parametrize("system", ALL_SYSTEMS)
class TestCompositionMatrix:
    def test_plain(self, system, golden_records, serial_baselines,
                   env_workers):
        for name, parallel in drivers(env_workers).items():
            result = pipeline.run_stream(
                iter(golden_records[system]), system, parallel=parallel,
            )
            assert_equivalent(result, serial_baselines[system])
            if name == "sharded":
                assert result.shard_stats is not None
                assert result.shard_stats.records == len(
                    golden_records[system]
                )

    def test_checkpoint_crash_resume(self, system, golden_records,
                                     serial_baselines, env_workers):
        records = golden_records[system]
        crash_at = max(CHECKPOINT_EVERY + 1, (len(records) * 2) // 3)
        for parallel in drivers(env_workers).values():
            manager = CheckpointManager(every=CHECKPOINT_EVERY)
            with pytest.raises(MidStreamCrash):
                pipeline.run_stream(
                    crash_after(records, crash_at), system,
                    checkpointer=manager, parallel=parallel,
                )
            assert manager.latest is not None
            assert 0 < manager.latest.records_consumed <= crash_at
            resumed = pipeline.run_stream(
                iter(records), system, parallel=parallel,
                checkpointer=manager, resume_from=manager.latest,
            )
            assert_equivalent(resumed, serial_baselines[system])

    def test_backpressure(self, system, golden_records, serial_baselines,
                          env_workers):
        for parallel in drivers(env_workers).values():
            result = pipeline.run_stream(
                iter(golden_records[system]), system,
                backpressure=BackpressureConfig(),
                parallel=parallel,
            )
            assert_equivalent(result, serial_baselines[system])
            assert result.overload is not None
            # Pausable source + roomy buffers: exact, nothing lost.
            assert result.overload.total_shed == 0
            assert result.overload.total_spilled == 0
            assert result.dead_letter_count == 0

    def test_supervised_faults(self, system, golden_records,
                               serial_baselines, env_workers):
        records = golden_records[system]
        crash_at = max(CHECKPOINT_EVERY + 1, (len(records) * 2) // 3)
        for parallel in drivers(env_workers).values():
            supervisor = PipelineSupervisor(
                restart_budget=2, checkpoint_every=CHECKPOINT_EVERY,
            )
            result = supervisor.run_records(
                lambda: list(records), system,
                faults=FaultConfig.crash_only(at=crash_at),
                parallel=parallel,
            )
            assert not result.degraded
            assert result.restarts == 1
            assert_equivalent(result, serial_baselines[system])


class TestRunSystemKnobs:
    """The satellite bugfix: ``run_system`` checkpoint/restart knobs are
    either wired or refused — never silently ignored."""

    def test_unsupervised_checkpointing_is_real(self, liberty_result):
        result = pipeline.run_system(
            "liberty", scale=2e-5, seed=20070625, checkpoint_every=500,
        )
        assert result.checkpoints is not None
        assert result.checkpoints.taken > 0
        assert result.checkpoints.latest is not None
        assert result.checkpoints.latest.records_consumed > 0
        assert_equivalent(result, liberty_result)

    def test_unsupervised_restart_budget_refused(self):
        with pytest.raises(ValueError, match="restart_budget"):
            pipeline.run_system(
                "liberty", scale=2e-5, seed=20070625, restart_budget=2,
            )

    def test_supervised_parallel_composes(self, env_workers):
        result = pipeline.run_system(
            "liberty", scale=2e-5, seed=20070625,
            faults=FaultConfig.crash_only(at=1500),
            parallel=parallel_config(env_workers),
        )
        assert not result.degraded
        assert result.restarts == 1
        assert result.shard_stats is not None

    def test_bounded_resume_keeps_shed_policy_state(self, golden_records):
        """The bounded driver checkpoints the shed policy's duplicate
        lookback, so a resumed policy remembers what it has seen."""
        system = ALL_SYSTEMS[0]
        records = golden_records[system]
        crash_at = max(CHECKPOINT_EVERY + 1, (len(records) * 2) // 3)
        manager = CheckpointManager(every=CHECKPOINT_EVERY)
        with pytest.raises(MidStreamCrash):
            pipeline.run_stream(
                crash_after(records, crash_at), system,
                checkpointer=manager, backpressure=BackpressureConfig(),
            )
        assert manager.latest is not None
        assert manager.latest.shed_state is not None
        resumed = pipeline.run_stream(
            iter(records), system, resume_from=manager.latest,
            backpressure=BackpressureConfig(),
        )
        baseline = pipeline.run_stream(
            iter(records), system, backpressure=BackpressureConfig(),
        )
        assert_equivalent(resumed, baseline)

"""Batch flow through the stage engine: protocols, helpers, and the
batch/per-record differential.

The batch-first refactor moves records through :class:`AlertPath` as
lists (``process_batch``/``process_tagged_batch``) and through sinks as
``(alert, kept)`` pair lists (``emit_batch``), while the per-record
semantics stay expressed once in ``path.py``.  These tests pin:

* the protocol dispatch helpers fall back to the per-record loop for
  third-party stages/sinks that only implement the original contract;
* ``AlertPath.process_batch`` over the golden corpus produces results
  identical to the per-record ``process`` loop, batch size by batch size;
* strict batch mode and dead-letter mode agree where both are defined.
"""

from __future__ import annotations

import pytest

from repro.core.tagging import RulesetHandle
from repro.engine.path import AlertPath
from repro.engine.stages import (
    BatchSink,
    BatchStage,
    Sink,
    Stage,
    emit_batch,
    process_batch,
)
from repro.logmodel.record import LogRecord
from repro.resilience.deadletter import DeadLetterQueue

from .conftest import ALL_SYSTEMS, assert_equivalent


def record(t=1.0, body="ok", source="n1", system="liberty"):
    return LogRecord(timestamp=t, source=source, facility="kernel",
                     body=body, system=system)


class RecordingStage:
    """A third-party stage written against the original protocol."""

    def __init__(self):
        self.seen = []

    def process(self, rec):
        self.seen.append(rec)


class RecordingBatchStage(RecordingStage):
    def __init__(self):
        super().__init__()
        self.batches = 0

    def process_batch(self, records):
        self.batches += 1
        self.seen.extend(records)


class RecordingSink:
    def __init__(self):
        self.pairs = []

    def emit(self, alert, kept):
        self.pairs.append((alert, kept))


class RecordingBatchSink(RecordingSink):
    def __init__(self):
        super().__init__()
        self.batches = 0

    def emit_batch(self, pairs):
        self.batches += 1
        self.pairs.extend(pairs)


class TestProtocolDispatch:
    def test_per_record_stage_gets_the_loop(self):
        stage = RecordingStage()
        records = [record(t=float(i)) for i in range(5)]
        process_batch(stage, records)
        assert stage.seen == records
        assert isinstance(stage, Stage)
        assert not isinstance(stage, BatchStage)

    def test_batch_stage_gets_one_call(self):
        stage = RecordingBatchStage()
        records = [record(t=float(i)) for i in range(5)]
        process_batch(stage, records)
        assert stage.seen == records
        assert stage.batches == 1
        assert isinstance(stage, BatchStage)

    def test_per_pair_sink_gets_the_loop(self):
        sink = RecordingSink()
        pairs = [(object(), True), (object(), False)]
        emit_batch(sink, pairs)
        assert sink.pairs == pairs
        assert isinstance(sink, Sink)
        assert not isinstance(sink, BatchSink)

    def test_batch_sink_gets_one_call(self):
        sink = RecordingBatchSink()
        pairs = [(object(), True), (object(), False)]
        emit_batch(sink, pairs)
        assert sink.pairs == pairs
        assert sink.batches == 1
        assert isinstance(sink, BatchSink)

    def test_alert_path_is_a_batch_stage(self):
        assert isinstance(AlertPath("liberty"), BatchStage)

    def test_alert_list_sink_is_a_batch_sink(self):
        path = AlertPath("liberty")
        assert isinstance(path.sink, BatchSink)


class TestEmitBatchEquivalence:
    def _pairs(self, system="liberty"):
        handle = RulesetHandle(system)
        tagger = handle.tagger()
        records = [
            record(t=float(i), body=cat.example or "quiet", system=system)
            for i, cat in enumerate(handle.resolve())
        ]
        pairs = []
        for i, rec in enumerate(records):
            alert = tagger.tag(rec)
            if alert is not None:
                pairs.append((alert, i % 2 == 0))
        return pairs

    def test_alert_list_sink_batch_equals_loop(self):
        pairs = self._pairs()
        assert pairs, "fixture must produce alerts"
        a = AlertPath("liberty").sink
        b = AlertPath("liberty").sink
        a.emit_batch(pairs)
        for alert, kept in pairs:
            b.emit(alert, kept)
        assert a.raw_alerts == b.raw_alerts
        assert a.filtered_alerts == b.filtered_alerts
        assert a.report.raw_total == b.report.raw_total
        assert a.report.filtered_total == b.report.filtered_total
        assert a.report.by_category == b.report.by_category

    def test_service_sink_batch_equals_loop(self):
        from repro.core.filtering import FilterReport
        from repro.service.accounting import TenantCounters
        from repro.service.tenant import ServiceAlertSink

        pairs = self._pairs()
        a = ServiceAlertSink(FilterReport(threshold=5.0), TenantCounters(), tail=64)
        b = ServiceAlertSink(FilterReport(threshold=5.0), TenantCounters(), tail=64)
        a.emit_batch(pairs)
        for alert, kept in pairs:
            b.emit(alert, kept)
        assert list(a.raw_alerts) == list(b.raw_alerts)
        assert list(a.filtered_alerts) == list(b.filtered_alerts)
        assert a.counters.alerts_raw == b.counters.alerts_raw
        assert a.counters.alerts_filtered == b.counters.alerts_filtered


class TestBatchPathDifferential:
    """process_batch must be observationally identical to the loop."""

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    @pytest.mark.parametrize("batch_size", [1, 7, 4096])
    def test_strict_batches_equal_per_record(
        self, golden_records, serial_baselines, system, batch_size
    ):
        records = golden_records[system]
        path = AlertPath(system)
        for start in range(0, len(records), batch_size):
            path.process_batch(records[start:start + batch_size])
        assert_equivalent(path.result(), serial_baselines[system])

    @pytest.mark.parametrize("system", ALL_SYSTEMS)
    def test_dead_letter_batches_equal_per_record(
        self, golden_records, system
    ):
        records = golden_records[system]
        a = AlertPath(system, dead_letters=DeadLetterQueue())
        b = AlertPath(system, dead_letters=DeadLetterQueue())
        a.process_batch(records)
        for rec in records:
            b.process(rec)
        assert_equivalent(a.result(), b.result())
        assert a.dead_letters.quarantined == b.dead_letters.quarantined

    def test_empty_batch_is_a_no_op(self):
        path = AlertPath("liberty")
        path.process_batch([])
        assert path.consumed == 0
        assert path.result().raw_alert_count == 0

    def test_tagged_batch_with_errors_falls_back(self):
        """process_tagged_batch with a worker-reported error must raise
        exactly where the per-record loop would (strict mode)."""
        from repro.core.tagging import BatchOutcome
        from repro.parallel.sharded import TaggerErrorReplay

        path = AlertPath("liberty")
        records = [record(t=1.0), record(t=2.0)]
        outcome = BatchOutcome(
            size=2, hits=(), errors=((1, "RuntimeError('boom')"),),
        )
        with pytest.raises(TaggerErrorReplay):
            path.process_tagged_batch(records, outcome)
        assert path.consumed == 2  # the clean record was consumed first

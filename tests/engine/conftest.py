"""Shared fixtures for the stage-engine suite: the golden corpus as
materialized record lists plus serial baseline results to diff against.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import api as pipeline
from repro.logio.reader import read_log
from repro.systems.specs import SYSTEMS

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "golden"
ALL_SYSTEMS = sorted(SYSTEMS)


def load_expected(system):
    path = GOLDEN_DIR / f"{system}.expected.json"
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.fixture(scope="session")
def golden_records():
    """Materialized golden log per system (replayable: tests iterate the
    list as many times as their driver matrix needs)."""
    return {
        system: list(read_log(
            GOLDEN_DIR / f"{system}.log", system,
            year=load_expected(system)["year"],
        ))
        for system in ALL_SYSTEMS
    }


@pytest.fixture(scope="session")
def serial_baselines(golden_records):
    """The reference outputs every driver combination must reproduce."""
    return {
        system: pipeline.run_stream(iter(records), system)
        for system, records in golden_records.items()
    }


def result_signature(result):
    """Everything observable about a run, for exact-equality diffs."""
    return {
        "messages": result.stats.messages,
        "raw_bytes": result.stats.raw_bytes,
        "compressed_bytes": result.stats.compressed_bytes,
        "corrupted": result.corrupted_messages,
        "raw_alerts": [
            (round(a.timestamp, 9), a.source, a.category, a.alert_type.value)
            for a in result.raw_alerts
        ],
        "filtered_alerts": [
            (round(a.timestamp, 9), a.source, a.category, a.alert_type.value)
            for a in result.filtered_alerts
        ],
        "category_counts": result.category_counts(),
        "severity_messages": dict(result.severity_tab.messages),
        "severity_alerts": dict(result.severity_tab.alerts),
    }


def assert_equivalent(result, baseline):
    assert result_signature(result) == result_signature(baseline)

"""Unit tests for :class:`repro.engine.path.AlertPath` — the one object
holding the per-record semantics every driver shares."""

from __future__ import annotations

import pytest

from repro.engine.drivers import SerialDriver
from repro.engine.path import AlertPath
from repro.logmodel.record import LogRecord
from repro.parallel.sharded import TaggerErrorReplay
from repro.resilience.deadletter import (
    DeadLetterQueue,
    REASON_INVALID_RECORD,
    REASON_OUT_OF_ORDER,
    REASON_TAGGER_ERROR,
)

from ..conftest import make_alert


def record(t=1.0, body="ok", source="n1"):
    return LogRecord(timestamp=t, source=source, facility="kernel",
                     body=body, system="liberty")


def invalid_record():
    return LogRecord(timestamp=float("nan"), source="n1",
                     facility="kernel", body="bad clock", system="liberty")


class ExplodingTagger:
    def tag(self, rec):
        raise RuntimeError("rules engine crashed")


class TestAdmission:
    def test_valid_has_no_side_effects(self):
        path = AlertPath("liberty", dead_letters=DeadLetterQueue())
        assert not AlertPath.valid(invalid_record())
        assert AlertPath.valid(record())
        assert path.consumed == 0
        assert path.dead_letters.quarantined == 0

    def test_invalid_record_quarantined(self):
        dlq = DeadLetterQueue()
        path = AlertPath("liberty", dead_letters=dlq)
        assert path.admit(record()) is True
        assert path.admit(invalid_record()) is False
        assert path.consumed == 2
        assert dlq.by_reason.get(REASON_INVALID_RECORD) == 1

    def test_strict_mode_admits_everything(self):
        path = AlertPath("liberty")
        assert path.admit(invalid_record()) is True
        assert path.consumed == 1


class TestTagAndOffer:
    def test_tagger_error_quarantines_and_skips_severity(self):
        dlq = DeadLetterQueue()
        path = AlertPath("liberty", dead_letters=dlq,
                         tagger=ExplodingTagger())
        assert path.tag(record()) is None
        assert dlq.by_reason.get(REASON_TAGGER_ERROR) == 1
        assert not dict(path.severity_tab.messages)

    def test_tagger_error_strict_raises(self):
        path = AlertPath("liberty", tagger=ExplodingTagger())
        with pytest.raises(RuntimeError):
            path.tag(record())

    def test_apply_tagged_error_strict_raises_replay(self):
        path = AlertPath("liberty")
        with pytest.raises(TaggerErrorReplay):
            path.apply_tagged(record(), error="RuntimeError('boom')")

    def test_apply_tagged_error_quarantines(self):
        dlq = DeadLetterQueue()
        path = AlertPath("liberty", dead_letters=dlq)
        assert path.apply_tagged(
            record(), error="RuntimeError('boom')"
        ) is None
        assert dlq.by_reason.get(REASON_TAGGER_ERROR) == 1

    def test_out_of_order_alert_quarantined(self):
        dlq = DeadLetterQueue()
        path = AlertPath("liberty", dead_letters=dlq)
        path.offer(make_alert(100.0, system="liberty"))
        path.offer(make_alert(50.0, system="liberty"))  # way backwards
        assert dlq.by_reason.get(REASON_OUT_OF_ORDER) == 1
        assert len(path.sink.raw_alerts) == 1

    def test_offer_feeds_sink_and_report(self):
        path = AlertPath("liberty")
        path.offer(make_alert(10.0, system="liberty"))
        path.offer(make_alert(10.5, category="CAT", system="liberty"))
        assert len(path.sink.raw_alerts) == 2
        assert path.report.raw_total == 2


class TestSnapshotResume:
    def test_mid_stream_snapshot_round_trips(self):
        records = [record(t=float(i), body=f"msg {i}") for i in range(40)]

        whole = AlertPath("liberty")
        SerialDriver().run(iter(records), whole)

        first = AlertPath("liberty")
        SerialDriver().run(iter(records[:25]), first)
        checkpoint = first.snapshot()
        assert checkpoint.records_consumed == 25

        second = AlertPath("liberty", resume_from=checkpoint)
        assert second.consumed == 25
        SerialDriver().run(iter(records[25:]), second)

        resumed_stats = second.stats_collector.finish()
        whole_stats = whole.stats_collector.finish()
        assert resumed_stats.messages == whole_stats.messages
        assert resumed_stats.raw_bytes == whole_stats.raw_bytes
        assert resumed_stats.compressed_bytes == whole_stats.compressed_bytes
        assert dict(second.severity_tab.messages) == \
            dict(whole.severity_tab.messages)
        assert second.consumed == whole.consumed

    def test_resume_rejects_wrong_system(self):
        path = AlertPath("liberty")
        checkpoint = path.snapshot()
        with pytest.raises(ValueError, match="liberty"):
            AlertPath("spirit", resume_from=checkpoint)

    def test_resume_rejects_wrong_threshold(self):
        path = AlertPath("liberty", threshold=5.0)
        checkpoint = path.snapshot()
        with pytest.raises(ValueError, match="threshold"):
            AlertPath("liberty", threshold=10.0, resume_from=checkpoint)

    def test_snapshot_carries_shed_state(self):
        path = AlertPath("liberty")
        checkpoint = path.snapshot(shed_state={"CAT": 12.5})
        assert checkpoint.shed_state == {"CAT": 12.5}
        resumed = AlertPath("liberty", resume_from=checkpoint)
        assert resumed.resumed_shed_state == {"CAT": 12.5}

"""Differential equivalence: parallel output must equal serial output.

Sharding the tagger is licensed by the per-record independence of rule
matching (Liang et al. filter per-node partitions independently); the
danger the ISSUE names is *silent semantic drift* between the serial and
parallel paths.  These property-based tests generate adversarial
multi-category log streams — chatter, real alerts from several sources,
truncated/corrupted records, records that crash the rules engine,
structurally invalid records — and assert the two paths agree on
everything observable: alerts, order, categories, filter survivors,
volume statistics, severity cross-tabs, and dead-letter accounting,
across worker counts and batch sizes.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api as pipeline
from repro.core.filtering import log_filter_list
from repro.core.tagging import RulesetHandle, Tagger
from repro.logmodel.record import LogRecord
from repro.parallel import ParallelConfig, ShardedTagger, chunked
from repro.resilience.deadletter import DeadLetterQueue

SYSTEM = "liberty"
RULESET = RulesetHandle(SYSTEM).resolve()

#: Bodies that tag (one per category with an example), whole and
#: truncated; chaff that never tags; and a body that crashes the engine.
ALERT_BODIES = [cat.example for cat in RULESET if cat.example]
TRUNCATED_BODIES = [body[: max(4, len(body) // 2)] for body in ALERT_BODIES]
CHAFF_BODIES = [
    "session opened for user root",
    "synchronized to time server",
    "routine health check ok",
    "",
]
FACILITIES = [cat.facility for cat in RULESET] + ["kernel", ""]


@st.composite
def record_streams(draw, max_size=160):
    """Time-ordered streams mixing alerts, chaff, corruption, and junk."""
    n = draw(st.integers(min_value=0, max_value=max_size))
    # Interarrival gaps straddle the T=5s threshold so the filter's
    # clear-table logic is exercised, not just pass-through.
    gaps = draw(st.lists(
        st.floats(min_value=0.0, max_value=9.0, allow_nan=False),
        min_size=n, max_size=n,
    ))
    kinds = draw(st.lists(
        st.sampled_from(["alert", "truncated", "chaff", "crash", "invalid"]),
        min_size=n, max_size=n,
    ))
    picks = draw(st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=n, max_size=n,
    ))
    records = []
    t = 1_000_000.0
    for gap, kind, pick in zip(gaps, kinds, picks):
        t += gap
        source = f"n{pick % 7}"
        if kind == "alert":
            cat = RULESET.categories[pick % len(RULESET.categories)]
            records.append(LogRecord(
                timestamp=t, source=source, facility=cat.facility,
                body=cat.example or "unit event", system=SYSTEM,
            ))
        elif kind == "truncated":
            body = TRUNCATED_BODIES[pick % len(TRUNCATED_BODIES)]
            records.append(LogRecord(
                timestamp=t, source=source,
                facility=FACILITIES[pick % len(FACILITIES)],
                body=body, system=SYSTEM, corrupted=True,
            ))
        elif kind == "chaff":
            records.append(LogRecord(
                timestamp=t, source=source, facility="kernel",
                body=CHAFF_BODIES[pick % len(CHAFF_BODIES)], system=SYSTEM,
            ))
        elif kind == "crash":
            # Non-string body, no facility prefix: the regex engine
            # raises inside whichever process tags it.
            records.append(LogRecord(
                timestamp=t, source=source, facility="",
                body=pick, system=SYSTEM, corrupted=True,
            ))
        else:  # invalid: fails the structural admission check
            records.append(LogRecord(
                timestamp=float("nan"), source=source, facility="kernel",
                body="bad timestamp", system=SYSTEM, corrupted=True,
            ))
    return records


WORKER_COUNTS = st.sampled_from([1, 2, 3])
BATCH_SIZES = st.sampled_from([1, 3, 17, 64])


def _assert_results_equal(serial, parallel, serial_dlq, parallel_dlq):
    assert parallel.raw_alerts == serial.raw_alerts
    assert parallel.filtered_alerts == serial.filtered_alerts
    assert [a.category for a in parallel.raw_alerts] == \
        [a.category for a in serial.raw_alerts]
    assert parallel.category_counts() == serial.category_counts()
    assert parallel.stats.messages == serial.stats.messages
    assert parallel.stats.raw_bytes == serial.stats.raw_bytes
    assert parallel.stats.compressed_bytes == serial.stats.compressed_bytes
    assert parallel.corrupted_messages == serial.corrupted_messages
    assert parallel.severity_tab.messages == serial.severity_tab.messages
    assert parallel.severity_tab.alerts == serial.severity_tab.alerts
    assert parallel_dlq.by_reason == serial_dlq.by_reason
    assert parallel_dlq.quarantined == serial_dlq.quarantined


class TestPipelineDifferential:
    """run_stream(serial) vs run_stream(parallel=...) — full results."""

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(records=record_streams(), workers=WORKER_COUNTS,
           batch_size=BATCH_SIZES)
    def test_full_pipeline_equivalence(self, records, workers, batch_size):
        serial_dlq = DeadLetterQueue()
        serial = pipeline.run_stream(list(records), SYSTEM,
                                     dead_letters=serial_dlq)
        parallel_dlq = DeadLetterQueue()
        parallel = pipeline.run_stream(
            list(records), SYSTEM, dead_letters=parallel_dlq,
            parallel=ParallelConfig(workers=workers, batch_size=batch_size),
        )
        _assert_results_equal(serial, parallel, serial_dlq, parallel_dlq)

    def test_equivalence_on_generated_system_logs(self, env_workers):
        """The synthetic five-system substrate, not just ad-hoc streams:
        a full generated liberty log through both paths."""
        serial = pipeline.run_system(SYSTEM, scale=2e-5, seed=99)
        parallel = pipeline.run_system(
            SYSTEM, scale=2e-5, seed=99,
            parallel=ParallelConfig(workers=env_workers, batch_size=256),
        )
        _assert_results_equal(
            serial, parallel, DeadLetterQueue(), DeadLetterQueue()
        )

    def test_parallel_filtered_matches_log_filter(self, env_workers):
        """The functional identity the ISSUE names: parallel filtered
        output == ``log_filter`` over the serially tagged alert stream."""
        result = pipeline.run_system(
            SYSTEM, scale=2e-5, seed=41,
            parallel=ParallelConfig(workers=env_workers, batch_size=128),
        )
        serial = pipeline.run_system(SYSTEM, scale=2e-5, seed=41)
        assert result.raw_alerts == serial.raw_alerts
        assert result.filtered_alerts == log_filter_list(serial.raw_alerts)


class TestTaggerDifferential:
    """ShardedTagger vs Tagger on the shared long-lived pool: cheap per
    example, so this property gets the wide sweep."""

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(records=record_streams(max_size=120),
           batch_size=BATCH_SIZES)
    def test_tag_stream_equivalence(self, liberty_sharded, records,
                                    batch_size):
        # Strip the records that crash the engine: the serial baseline
        # raises on them without a queue, and the quarantine equivalence
        # is covered by the pipeline-level property above.
        safe = [r for r in records if isinstance(r.body, str)]
        serial = list(Tagger(RULESET).tag_stream(safe))
        outcomes = liberty_sharded.tag_batches(chunked(safe, batch_size))
        parallel = [
            alert for _, outcome in outcomes for _, alert in outcome.hits
        ]
        assert parallel == serial

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(records=record_streams(max_size=80))
    def test_batch_outcomes_conserve_records(self, liberty_sharded, records):
        safe = [r for r in records if isinstance(r.body, str)]
        total = sum(
            outcome.size
            for _, outcome in liberty_sharded.tag_batches(chunked(safe, 13))
        )
        assert total == len(safe)

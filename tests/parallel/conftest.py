"""Fixtures for the parallel-execution suite.

The shared ``env_workers`` fixture (and the ``REPRO_PARALLEL_WORKERS``
override the CI matrix job uses) lives in the top-level conftest so the
golden-corpus tests can exercise the parallel path too.
"""

from __future__ import annotations

import pytest

from repro.parallel import ParallelConfig, ShardedTagger

from ..conftest import ENV_WORKERS


@pytest.fixture(scope="session")
def liberty_sharded():
    """One long-lived pool reused across tests/examples: worker startup
    is the expensive part, and reuse is itself part of the contract."""
    config = ParallelConfig(workers=ENV_WORKERS, batch_size=64)
    with ShardedTagger("liberty", config) as sharded:
        yield sharded

"""Fault-path tests: a worker process dies mid-batch.

The contract under test is the supervisor doctrine of the parallel
layer: a killed worker produced no output for its batch (outcomes exist
only when a future resolves), the parent replays each affected batch
through the serial fallback tagger **exactly once**, and the merged
output — alerts, order, dead-letter accounting — is indistinguishable
from a run where no worker ever died.
"""

import pytest

from repro import api as pipeline
from repro.core.tagging import RulesetHandle, Tagger
from repro.logmodel.record import LogRecord
from repro.parallel import (
    KILL_SENTINEL,
    ParallelConfig,
    ShardedTagger,
    WorkerCrashError,
    chunked,
)
from repro.resilience.deadletter import DeadLetterQueue


def _stream_with_kills(n=400, kill_at=(123,)):
    """A liberty stream with real alerts, chaff, and kill sentinels."""
    ruleset = RulesetHandle("liberty").resolve()
    alert_cats = [cat for cat in ruleset if cat.example]
    records = []
    for i in range(n):
        if i in kill_at:
            # The sentinel body matches no expert rule, so on the serial
            # path (and the retry path) it is simply an untagged record.
            records.append(
                LogRecord(timestamp=float(i), source="n1", facility="",
                          body=KILL_SENTINEL, system="liberty")
            )
        elif i % 4 == 0:
            cat = alert_cats[i % len(alert_cats)]
            records.append(
                LogRecord(timestamp=float(i), source=f"n{i % 13}",
                          facility=cat.facility, body=cat.example,
                          system="liberty")
            )
        else:
            records.append(
                LogRecord(timestamp=float(i), source="n1",
                          facility="kernel", body="routine chatter",
                          system="liberty")
            )
    return records


def _serial_alerts(records):
    return list(Tagger(RulesetHandle("liberty").resolve())
                .tag_stream(records))


class TestWorkerCrashRecovery:
    def test_killed_worker_batch_is_retried_exactly_once(self, env_workers):
        records = _stream_with_kills(n=400, kill_at=(123,))
        config = ParallelConfig(workers=env_workers, batch_size=32,
                                enable_test_faults=True)
        with ShardedTagger("liberty", config) as sharded:
            yielded = list(sharded.tag_batches(chunked(records, 32)))
            stats = sharded.stats
        # The crash was observed and survived.
        assert stats.worker_crashes >= 1
        assert stats.pools_recreated >= 1
        # Exactly-once per batch: every submitted batch came back exactly
        # once, sizes conserve, and no batch was replayed twice (the
        # retried flag makes a second replay raise instead).
        assert len(yielded) == stats.batches == 13  # ceil(400/32)
        assert sum(outcome.size for _, outcome in yielded) == 400
        assert stats.batches_retried >= 1
        assert stats.batches_retried <= stats.batches

    def test_no_duplicated_or_lost_alerts(self, env_workers):
        records = _stream_with_kills(n=400, kill_at=(123,))
        config = ParallelConfig(workers=env_workers, batch_size=32,
                                enable_test_faults=True)
        with ShardedTagger("liberty", config) as sharded:
            parallel = list(sharded.tag_stream(records))
        assert parallel == _serial_alerts(records)

    def test_multiple_crashes_across_stream(self, env_workers):
        records = _stream_with_kills(n=600, kill_at=(50, 301, 555))
        config = ParallelConfig(workers=env_workers, batch_size=25,
                                enable_test_faults=True)
        with ShardedTagger("liberty", config) as sharded:
            parallel = list(sharded.tag_stream(records))
            stats = sharded.stats
        assert parallel == _serial_alerts(records)
        assert stats.worker_crashes >= 3
        assert stats.pools_recreated >= 3

    def test_retry_disabled_propagates_crash(self, env_workers):
        records = _stream_with_kills(n=100, kill_at=(10,))
        config = ParallelConfig(workers=env_workers, batch_size=10,
                                enable_test_faults=True,
                                retry_failed_batches=False)
        with ShardedTagger("liberty", config) as sharded:
            with pytest.raises(WorkerCrashError):
                list(sharded.tag_stream(records))

    def test_pipeline_result_identical_under_crashes(self, env_workers):
        """Full run_stream: a crashing run's result — alerts, filter
        output, stats, dead letters — matches an undisturbed serial run
        of the same stream (dead-letter accounting exact: zero letters,
        because the retry absorbed the crash)."""
        records = _stream_with_kills(n=500, kill_at=(77, 402))
        serial_dlq = DeadLetterQueue()
        serial = pipeline.run_stream(records, "liberty",
                                     dead_letters=serial_dlq)
        parallel_dlq = DeadLetterQueue()
        config = ParallelConfig(workers=env_workers, batch_size=40,
                                enable_test_faults=True)
        parallel = pipeline.run_stream(records, "liberty",
                                       dead_letters=parallel_dlq,
                                       parallel=config)
        assert parallel.shard_stats is not None
        assert parallel.shard_stats.worker_crashes >= 1
        assert parallel.raw_alerts == serial.raw_alerts
        assert parallel.filtered_alerts == serial.filtered_alerts
        assert parallel.stats.messages == serial.stats.messages
        assert parallel.stats.raw_bytes == serial.stats.raw_bytes
        assert parallel.category_counts() == serial.category_counts()
        assert parallel_dlq.by_reason == serial_dlq.by_reason == {}
        assert parallel_dlq.quarantined == serial_dlq.quarantined == 0

    def test_sentinel_inert_without_fault_flag(self, env_workers):
        """The kill hook must be opt-in: the same stream on a production
        config treats the sentinel as an ordinary untagged record."""
        records = _stream_with_kills(n=120, kill_at=(60,))
        config = ParallelConfig(workers=env_workers, batch_size=16)
        with ShardedTagger("liberty", config) as sharded:
            parallel = list(sharded.tag_stream(records))
            stats = sharded.stats
        assert stats.worker_crashes == 0
        assert parallel == _serial_alerts(records)

"""The byte-buffer shard boundary: wire-format and fallback unit tests.

The end-to-end serial/parallel equivalence lives in
``test_differential.py``; these tests pin the boundary mechanics
directly — the length-prefixed encode/decode round trip (including
newlines, non-ASCII, and lone surrogates planted by corruption), the
compact worker outcome, and the parent-local fallback for records whose
match text cannot travel as text.
"""

from __future__ import annotations

from array import array

import pytest

from repro.core.tagging import RulesetHandle, Tagger
from repro.logmodel.record import LogRecord
from repro.parallel.config import ParallelConfig
from repro.parallel.sharded import (
    _LENGTH_TYPECODE,
    ShardedTagger,
    _encode_texts,
    _match_texts,
    chunked,
)


def decode_texts(lens_bytes, blob):
    """The worker-side slicing, reproduced for round-trip checks."""
    lens = array(_LENGTH_TYPECODE)
    lens.frombytes(lens_bytes)
    decoded = blob.decode("utf-8", "surrogatepass")
    out, pos = [], 0
    for length in lens:
        out.append(decoded[pos:pos + length])
        pos += length
    assert pos == len(decoded), "blob longer than the lengths account for"
    return out


def record(body, facility="kernel", t=1.0):
    return LogRecord(timestamp=t, source="n1", facility=facility,
                     body=body, system="liberty")


class TestEncodeRoundTrip:
    @pytest.mark.parametrize("texts", [
        [],
        [""],
        ["plain ascii"],
        ["a", "", "bb", "", ""],
        ["embedded\nnewline", "tab\there", "cr\rhere"],
        ["açcénted", "日本語テキスト", "mixed ascii 日本"],
        ["\x00null byte", "high \U0001f600 plane"],
    ])
    def test_round_trip(self, texts):
        assert decode_texts(*_encode_texts(texts)) == texts

    def test_lone_surrogate_round_trips(self):
        # Corruption (or hypothesis) can plant lone surrogates in a body;
        # strict utf-8 would raise, surrogatepass must round-trip them.
        texts = ["before \ud800 after", "\udfff"]
        assert decode_texts(*_encode_texts(texts)) == texts

    def test_lengths_are_characters_not_bytes(self):
        texts = ["日本", "ab"]
        lens_bytes, blob = _encode_texts(texts)
        lens = array(_LENGTH_TYPECODE)
        lens.frombytes(lens_bytes)
        assert list(lens) == [2, 2]
        assert len(blob) > 4  # multibyte on the wire

    def test_non_str_text_raises_type_error(self):
        with pytest.raises(TypeError):
            _encode_texts(["fine", 12345])


class TestMatchTexts:
    def test_facility_prefix_matches_full_text(self):
        records = [
            record("body only", facility=""),
            record("with facility", facility="pbs_mom"),
        ]
        assert _match_texts(records) == [r.full_text() for r in records]


class TestLocalFallback:
    """Records whose text cannot ship resolve in-parent, identically to
    the serial schedule (same error reprs, same positions)."""

    def _stream(self):
        handle = RulesetHandle("liberty")
        example = next(c.example for c in handle.resolve() if c.example)
        return [
            record(example, t=1.0),
            # Non-str body with no facility prefix: full_text is non-str,
            # the serial strict path raises TypeError on it.
            record(12345, facility="", t=2.0),
            record("routine chatter", t=3.0),
            record(example, t=4.0),
        ]

    def test_sharded_outcome_matches_serial(self):
        records = self._stream()
        serial = Tagger(RulesetHandle("liberty").resolve())
        expected = serial.tag_batch(records)
        with ShardedTagger(
            "liberty", ParallelConfig(workers=1, batch_size=4)
        ) as sharded:
            outcomes = list(sharded.tag_batches([records]))
        assert len(outcomes) == 1
        _, outcome = outcomes[0]
        assert outcome.size == expected.size
        assert [(i, a.category) for i, a in outcome.hits] == \
            [(i, a.category) for i, a in expected.hits]
        assert outcome.errors == expected.errors
        assert "TypeError" in outcome.error_map()[1]

    def test_tag_stream_order_preserved_across_batches(self):
        handle = RulesetHandle("liberty")
        example = next(c.example for c in handle.resolve() if c.example)
        records = [
            record(example if i % 3 == 0 else "quiet noise", t=float(i))
            for i in range(50)
        ]
        serial = list(Tagger(handle.resolve()).tag_stream(records))
        with ShardedTagger(
            "liberty", ParallelConfig(workers=2, batch_size=7)
        ) as sharded:
            parallel = list(sharded.tag_stream(iter(records)))
        assert [(a.timestamp, a.category) for a in parallel] == \
            [(a.timestamp, a.category) for a in serial]

    def test_chunked_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            list(chunked([], 0))

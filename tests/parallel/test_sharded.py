"""Unit tests for the sharded tagging layer: merge, chunking, pool."""

import pytest

from repro.core.tagging import RulesetHandle, Tagger
from repro.logmodel.record import LogRecord
from repro.parallel import (
    MergeOrderError,
    OrderedMerge,
    ParallelConfig,
    ShardedTagger,
    TaggerErrorReplay,
    chunked,
)
from repro.resilience.deadletter import REASON_TAGGER_ERROR, DeadLetterQueue


def _record(body, t=1.0, facility="kernel"):
    return LogRecord(timestamp=t, source="n1", facility=facility,
                     body=body, system="liberty")


def _liberty_records(n=500):
    """A deterministic mixed stream: chaff plus real liberty alerts."""
    ruleset = RulesetHandle("liberty").resolve()
    bodies = ["all quiet on node", "login session opened"]
    bodies += [cat.example for cat in ruleset if cat.example]
    records = []
    for i in range(n):
        cat = ruleset.categories[i % len(ruleset.categories)]
        if i % 3 == 0 and cat.example:
            records.append(
                LogRecord(timestamp=float(i), source=f"n{i % 17}",
                          facility=cat.facility, body=cat.example,
                          system="liberty")
            )
        else:
            records.append(
                _record(bodies[i % len(bodies)], t=float(i))
            )
    return records


class TestOrderedMerge:
    def test_releases_in_index_order(self):
        merge = OrderedMerge(window=8)
        merge.add(2, "c")
        merge.add(0, "a")
        assert list(merge.drain()) == ["a"]
        merge.add(1, "b")
        assert list(merge.drain()) == ["b", "c"]
        merge.assert_empty()

    def test_duplicate_index_raises(self):
        merge = OrderedMerge(window=4)
        merge.add(0, "a")
        with pytest.raises(MergeOrderError):
            merge.add(0, "again")

    def test_released_index_cannot_return(self):
        merge = OrderedMerge(window=4)
        merge.add(0, "a")
        assert list(merge.drain()) == ["a"]
        with pytest.raises(MergeOrderError):
            merge.add(0, "zombie")

    def test_window_overflow_raises(self):
        merge = OrderedMerge(window=2)
        merge.add(1, "b")
        merge.add(3, "d")
        with pytest.raises(MergeOrderError):
            merge.add(5, "f")

    def test_assert_empty_reports_gap(self):
        merge = OrderedMerge(window=4)
        merge.add(1, "b")
        with pytest.raises(MergeOrderError, match="index 0"):
            merge.assert_empty()

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            OrderedMerge(window=0)


class TestChunked:
    def test_exact_and_ragged_batches(self):
        records = [_record("x", t=float(i)) for i in range(7)]
        batches = list(chunked(records, 3))
        assert [len(b) for b in batches] == [3, 3, 1]
        assert [r for b in batches for r in b] == records

    def test_empty_stream(self):
        assert list(chunked([], 4)) == []

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(chunked([_record("x")], 0))


class TestParallelConfig:
    def test_defaults_resolve(self):
        config = ParallelConfig()
        assert config.resolved_workers() >= 2
        assert config.resolved_inflight() == 2 * config.resolved_workers()
        assert config.resolved_context() in {"fork", "spawn", "forkserver"}

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=-1)
        with pytest.raises(ValueError):
            ParallelConfig(batch_size=0)
        with pytest.raises(ValueError):
            ParallelConfig(max_inflight=-2)

    def test_with_workers(self):
        assert ParallelConfig().with_workers(3).resolved_workers() == 3


class TestShardedTagger:
    def test_unknown_system_fails_fast(self):
        with pytest.raises(KeyError):
            ShardedTagger("crayola")

    def test_matches_serial_tagger(self, liberty_sharded):
        records = _liberty_records(400)
        serial = list(Tagger(RulesetHandle("liberty").resolve())
                      .tag_stream(records))
        parallel = list(liberty_sharded.tag_stream(records))
        assert parallel == serial
        assert [a.category for a in parallel] == [a.category for a in serial]

    def test_pool_survives_multiple_streams(self, liberty_sharded):
        records = _liberty_records(150)
        first = list(liberty_sharded.tag_stream(records))
        second = list(liberty_sharded.tag_stream(records))
        assert first == second

    def test_batches_reassembled_in_submission_order(self, liberty_sharded):
        records = _liberty_records(300)
        batches = list(chunked(records, 64))
        seen = [
            batch for batch, _ in liberty_sharded.tag_batches(iter(batches))
        ]
        assert seen == batches

    def test_conservation(self, liberty_sharded):
        """Every record is tagged exactly once: batch sizes conserve."""
        records = _liberty_records(333)
        total = sum(
            outcome.size
            for _, outcome in liberty_sharded.tag_batches(chunked(records, 50))
        )
        assert total == len(records)

    def test_worker_error_goes_to_dead_letters(self, env_workers):
        records = _liberty_records(60)
        # A non-string body with no facility prefix crashes the regex
        # engine inside the worker process.
        records[31] = _record(12345, t=31.0, facility="")
        dlq = DeadLetterQueue()
        config = ParallelConfig(workers=env_workers, batch_size=16)
        with ShardedTagger("liberty", config) as sharded:
            alerts = list(sharded.tag_stream(records, dead_letters=dlq))
        assert dlq.by_reason == {REASON_TAGGER_ERROR: 1}
        assert dlq.letters_for(REASON_TAGGER_ERROR)[0].record is not None
        serial_ok = [r for i, r in enumerate(records) if i != 31]
        serial = list(Tagger(RulesetHandle("liberty").resolve())
                      .tag_stream(serial_ok))
        assert alerts == serial

    def test_worker_error_strict_without_queue(self, env_workers):
        records = _liberty_records(40)
        records[7] = _record(12345, t=7.0, facility="")
        config = ParallelConfig(workers=env_workers, batch_size=8)
        with ShardedTagger("liberty", config) as sharded:
            with pytest.raises(TaggerErrorReplay, match="TypeError"):
                list(sharded.tag_stream(records))

    def test_closed_tagger_refuses_work(self):
        sharded = ShardedTagger("liberty", ParallelConfig(workers=2))
        sharded.close()
        with pytest.raises(RuntimeError, match="closed"):
            list(sharded.tag_stream(_liberty_records(10)))

    def test_stats_accounting(self, env_workers):
        records = _liberty_records(200)
        config = ParallelConfig(workers=env_workers, batch_size=32)
        with ShardedTagger("liberty", config) as sharded:
            alerts = list(sharded.tag_stream(records))
            stats = sharded.stats
        assert stats.records == 200
        assert stats.batches == 7  # ceil(200 / 32)
        assert stats.alerts == len(alerts)
        assert stats.worker_crashes == 0
        assert stats.batches_retried == 0
        assert "workers" in stats.summary_line()

"""Unit tests for spatial and inter-tag correlation analysis."""

import numpy as np
import pytest

from repro.analysis.correlation import (
    correlation_matrix,
    spatial_correlation,
    tag_correlation,
)
from repro.core.filtering import sorted_by_time

from ..conftest import make_alert


class TestSpatialCorrelation:
    def test_multi_node_bursts_flagged(self):
        """The CPU clock-bug signature: one trigger, many nodes at once."""
        alerts = []
        for burst in range(10):
            base = burst * 1e5
            for node in range(5):
                alerts.append(
                    make_alert(base + node, source=f"n{node}", category="CPU")
                )
        result = spatial_correlation(sorted_by_time(alerts))["CPU"]
        assert result.is_spatially_correlated
        assert result.incidents == 10
        assert result.mean_distinct_sources == pytest.approx(5.0)

    def test_per_node_physics_not_flagged(self):
        """ECC-style: each burst confined to the failing node."""
        rng = np.random.default_rng(0)
        alerts = [
            make_alert(float(t), source=f"n{rng.integers(50)}", category="ECC")
            for t in np.cumsum(rng.uniform(1e4, 1e5, size=60))
        ]
        result = spatial_correlation(sorted_by_time(alerts))["ECC"]
        assert not result.is_spatially_correlated
        assert result.mean_distinct_sources == pytest.approx(1.0)

    def test_empty(self):
        assert spatial_correlation([]) == {}


class TestTagCorrelation:
    def _correlated(self, echo_fraction=1.0, n=20):
        rng = np.random.default_rng(1)
        alerts = []
        t = 0.0
        for _ in range(n):
            t += float(rng.uniform(1e4, 1e5))
            alerts.append(make_alert(t, category="GM_PAR"))
            if rng.random() < echo_fraction:
                alerts.append(make_alert(t + 5.0, category="GM_LANAI"))
        return sorted_by_time(alerts)

    def test_perfect_echo(self):
        corr = tag_correlation(self._correlated(), "GM_PAR", "GM_LANAI")
        assert corr.is_correlated
        assert corr.coincidence_rate == pytest.approx(1.0)

    def test_partial_echo_still_correlated(self):
        """Figure 3: 'GM_LANAI messages do not always follow GM_PAR
        messages, nor vice versa.  However, the correlation is clear.'"""
        corr = tag_correlation(
            self._correlated(echo_fraction=0.6), "GM_PAR", "GM_LANAI"
        )
        assert corr.is_correlated

    def test_independent_tags_not_correlated(self):
        rng = np.random.default_rng(2)
        alerts = sorted_by_time(
            [make_alert(float(t), category="X")
             for t in np.cumsum(rng.uniform(1e4, 1e5, 30))]
            + [make_alert(float(t) + 3333.0, category="Y")
               for t in np.cumsum(rng.uniform(1e4, 1e5, 30))]
        )
        corr = tag_correlation(alerts, "X", "Y", window=60.0)
        assert not corr.is_correlated

    def test_missing_category(self):
        corr = tag_correlation(
            [make_alert(0.0, category="A")], "A", "MISSING"
        )
        assert corr.coincidences == 0
        assert not corr.is_correlated

    def test_generator_input_rejected(self):
        with pytest.raises(TypeError, match="list"):
            tag_correlation(iter([]), "A", "B")

    def test_mean_lag_sign(self):
        """GM_LANAI trails GM_PAR, so the (rarer-to-other) lag is positive
        when the echo is the rarer tag."""
        corr = tag_correlation(
            self._correlated(echo_fraction=0.5), "GM_PAR", "GM_LANAI"
        )
        assert corr.mean_lag < 0 or corr.mean_lag > 0  # defined either way
        assert corr.coincidences > 0


class TestCorrelationMatrix:
    def test_upper_triangle(self):
        alerts = [
            make_alert(0.0, category="A"),
            make_alert(1.0, category="B"),
            make_alert(2.0, category="C"),
        ]
        matrix = correlation_matrix(alerts, ["A", "B", "C"], window=10.0)
        assert set(matrix) == {("A", "B"), ("A", "C"), ("B", "C")}

"""Unit tests for phase-shift (changepoint) detection."""

import numpy as np
import pytest

from repro.analysis.phases import detect_phase_shifts, segment_means
from repro.analysis.timeseries import RateSeries


def _series(values, bucket=3600.0, start=0.0):
    return RateSeries(
        bucket_seconds=bucket, start=start, counts=np.asarray(values)
    )


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(55)


class TestDetection:
    def test_detects_single_step(self, rng):
        values = np.concatenate(
            [rng.poisson(50, 200), rng.poisson(150, 200)]
        )
        shifts = detect_phase_shifts(_series(values))
        assert len(shifts) == 1
        assert abs(shifts[0].bucket_index - 200) <= 5
        assert shifts[0].magnitude == pytest.approx(3.0, rel=0.2)

    def test_detects_multiple_steps(self, rng):
        values = np.concatenate(
            [rng.poisson(40, 150), rng.poisson(120, 150), rng.poisson(70, 150)]
        )
        shifts = detect_phase_shifts(_series(values))
        assert len(shifts) == 2
        indices = [s.bucket_index for s in shifts]
        assert abs(indices[0] - 150) <= 8
        assert abs(indices[1] - 300) <= 8

    def test_flat_noise_yields_nothing(self, rng):
        values = rng.poisson(80, 500)
        assert detect_phase_shifts(_series(values)) == []

    def test_min_segment_rejects_transient_storm(self, rng):
        """A one-hour storm is a failure, not system evolution."""
        values = rng.poisson(50, 400)
        values[200] = 5000
        shifts = detect_phase_shifts(_series(values), min_segment=24)
        assert shifts == []

    def test_timestamps_follow_buckets(self, rng):
        values = np.concatenate([rng.poisson(20, 100), rng.poisson(200, 100)])
        series = _series(values, bucket=3600.0, start=1e9)
        (shift,) = detect_phase_shifts(series)
        assert shift.timestamp == 1e9 + shift.bucket_index * 3600.0

    def test_short_series_is_quiet(self):
        assert detect_phase_shifts(_series([5, 6, 5, 7])) == []


class TestSegmentMeans:
    def test_means_per_phase(self, rng):
        values = np.concatenate([np.full(100, 10.0), np.full(100, 30.0)])
        series = _series(values)
        shifts = detect_phase_shifts(series)
        means = segment_means(series, shifts)
        assert len(means) == len(shifts) + 1
        assert means[0] == pytest.approx(10.0, abs=1.0)
        assert means[-1] == pytest.approx(30.0, abs=1.0)

    def test_no_shifts_single_segment(self):
        series = _series([5.0, 5.0, 5.0])
        assert segment_means(series, []) == [pytest.approx(5.0)]

"""Unit tests for frequent-template mining."""

import pytest

from repro.analysis.patterns import (
    Template,
    mine_templates,
    suggest_rules,
    template_coverage,
)


def _corpus():
    bodies = []
    for i in range(50):
        bodies.append(f"pbs_mom: task_check, cannot tm_reply to {i}.admin task 1")
    for i in range(30):
        bodies.append(f"kernel: EXT3-fs error (device sda{i % 4}): aborted")
    bodies.extend(["one-off message alpha", "one-off message beta"])
    return bodies


class TestMineTemplates:
    def test_finds_dominant_templates(self):
        templates = mine_templates(_corpus(), min_support=10)
        patterns = [t.pattern() for t in templates]
        assert any("task_check," in p and "*" in p for p in patterns)
        assert any("EXT3-fs" in p for p in patterns)

    def test_wildcards_at_variable_positions(self):
        templates = mine_templates(_corpus(), min_support=10)
        pbs = next(t for t in templates if "task_check," in t.pattern())
        # The job id position is variable -> wildcard.
        assert "*" in pbs.tokens
        assert "task_check," in pbs.tokens

    def test_support_ordering(self):
        templates = mine_templates(_corpus(), min_support=10)
        supports = [t.support for t in templates]
        assert supports == sorted(supports, reverse=True)
        assert templates[0].support == 50

    def test_rare_lines_dropped(self):
        templates = mine_templates(_corpus(), min_support=10)
        assert not any("one-off" in t.pattern() for t in templates)

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            mine_templates([], min_support=0)

    def test_empty_corpus(self):
        assert mine_templates([], min_support=1) == []

    def test_max_templates_cap(self):
        bodies = [f"unique prefix {i} common tail" for i in range(30)] * 2
        templates = mine_templates(bodies, min_support=2, max_templates=5)
        assert len(templates) <= 5


class TestTemplateMatching:
    def test_matches_instantiations(self):
        template = Template(
            tokens=("error", "on", "*"), support=5, example="error on sda",
        )
        assert template.matches("error on sdb")
        assert not template.matches("error on")          # length differs
        assert not template.matches("warning on sdb")    # literal differs

    def test_coverage(self):
        templates = mine_templates(_corpus(), min_support=10)
        coverage = template_coverage(templates, _corpus())
        assert coverage == pytest.approx(80 / 82, abs=0.02)

    def test_coverage_empty(self):
        assert template_coverage([], []) == 0.0


class TestSuggestRules:
    def test_rules_are_valid_regexes_matching_the_source_lines(self):
        import re

        templates = mine_templates(_corpus(), min_support=10)
        rules = suggest_rules(templates)
        assert rules
        corpus = _corpus()
        for rule in rules:
            compiled = re.compile(rule)
            assert any(compiled.search(body) for body in corpus), rule

    def test_too_generic_templates_skipped(self):
        template = Template(
            tokens=("*", "*", "x"), support=100, example="a b x",
        )
        assert suggest_rules([template], min_literal_words=3) == []


class TestRulesetFromTemplates:
    def test_bootstrapped_ruleset_tags_failure_lines(self):
        from repro.analysis.patterns import ruleset_from_templates
        from repro.core.tagging import Tagger
        from repro.logmodel.record import LogRecord

        templates = mine_templates(_corpus(), min_support=10)
        ruleset = ruleset_from_templates("mystery", templates)
        assert len(ruleset) >= 1
        tagger = Tagger(ruleset)
        hit = LogRecord(
            timestamp=1.0, source="n1", facility="",
            body="pbs_mom: task_check, cannot tm_reply to 777.admin task 1",
            system="mystery",
        )
        miss = LogRecord(
            timestamp=1.0, source="n1", facility="",
            body="session opened for user root", system="mystery",
        )
        assert tagger.match(hit) is not None
        assert tagger.match(miss) is None

    def test_benign_templates_excluded(self):
        from repro.analysis.patterns import ruleset_from_templates

        bodies = ["ntpd: synchronized to 10.0.0.1, stratum 2"] * 50
        templates = mine_templates(bodies, min_support=10)
        ruleset = ruleset_from_templates("mystery", templates)
        assert len(ruleset) == 0

    def test_mined_names_are_sequential(self):
        from repro.analysis.patterns import ruleset_from_templates

        templates = mine_templates(_corpus(), min_support=10)
        ruleset = ruleset_from_templates("mystery", templates)
        for category in ruleset:
            assert category.name.startswith("MINED_")


class TestOnGeneratedLog:
    def test_mined_templates_align_with_calibrated_categories(self):
        """Unsupervised mining over a generated Liberty log recovers the
        PBS-bug template as the top alert-side cluster."""
        from repro.simulation.generator import generate_log

        records = list(
            generate_log("liberty", scale=1e-4, seed=5, corruption=0.0).records
        )
        bodies = [r.full_text() for r in records]
        templates = mine_templates(bodies, min_support=30)
        assert any("task_check," in t.pattern() for t in templates)
        assert template_coverage(templates, bodies) > 0.9

"""Unit tests for severity cross-tabulation and detector scoring."""

import pytest

from repro.analysis.severity_eval import (
    DetectorScore,
    SeverityCrossTab,
    score_severity_detector,
    severity_cross_tab,
)
from repro.core.categories import AlertType, CategoryDef, Ruleset
from repro.core.severity import SeverityTaggerConfig
from repro.core.tagging import Tagger
from repro.logmodel.record import LogRecord


def _ruleset():
    return Ruleset(
        system="test",
        categories=(
            CategoryDef(
                name="BOOM", system="test", alert_type=AlertType.HARDWARE,
                pattern=r"boom",
            ),
        ),
    )


def _record(body, severity):
    return LogRecord(
        timestamp=1.0, source="n1", facility="", body=body, severity=severity,
    )


class TestCrossTab:
    def test_accumulates(self):
        tab = SeverityCrossTab()
        tab.add(_record("boom", "FATAL"), is_alert=True)
        tab.add(_record("ok", "FATAL"), is_alert=False)
        tab.add(_record("ok", "INFO"), is_alert=False)
        assert tab.messages == {"FATAL": 2, "INFO": 1}
        assert tab.alerts == {"FATAL": 1}

    def test_none_label(self):
        tab = SeverityCrossTab()
        tab.add(_record("ok", None), is_alert=False)
        assert tab.messages == {SeverityCrossTab.NONE_LABEL: 1}

    def test_rows_percentages_over_listed_labels_only(self):
        tab = SeverityCrossTab()
        tab.add(_record("boom", "FATAL"), is_alert=True)
        tab.add(_record("ok", "INFO"), is_alert=False)
        tab.add(_record("ok", None), is_alert=False)  # excluded from order
        rows = tab.rows(["FATAL", "INFO"])
        assert rows[0] == ("FATAL", 1, 50.0, 1, 100.0)
        assert rows[1] == ("INFO", 1, 50.0, 0, 0.0)

    def test_cross_tab_builder(self):
        tagger = Tagger(_ruleset())
        records = [_record("boom", "FATAL"), _record("calm", "INFO")]
        tab = severity_cross_tab(records, tagger)
        assert tab.total_messages == 2
        assert tab.total_alerts == 1


class TestDetectorScore:
    def test_fp_rate_is_one_minus_precision(self):
        score = DetectorScore(
            true_positives=4, false_positives=6,
            true_negatives=80, false_negatives=0,
        )
        assert score.false_positive_rate == pytest.approx(0.6)
        assert score.precision == pytest.approx(0.4)
        assert score.false_negative_rate == 0.0
        assert score.recall == 1.0

    def test_degenerate_empty(self):
        score = DetectorScore(0, 0, 0, 0)
        assert score.false_positive_rate == 0.0
        assert score.false_negative_rate == 0.0

    def test_scoring_against_expert_tags(self):
        tagger = Tagger(_ruleset())
        records = [
            _record("boom", "FATAL"),    # TP: flagged, real alert
            _record("quiet", "FATAL"),   # FP: flagged, not an alert
            _record("boom", "INFO"),     # FN: real alert, not flagged
            _record("quiet", "INFO"),    # TN
        ]
        score = score_severity_detector(
            records, tagger, SeverityTaggerConfig.bgl_fatal_failure()
        )
        assert (score.true_positives, score.false_positives,
                score.false_negatives, score.true_negatives) == (1, 1, 1, 1)
        assert score.false_positive_rate == pytest.approx(0.5)
        assert score.false_negative_rate == pytest.approx(0.5)


class TestPaperNumberAtFullCalibration:
    def test_bgl_fp_rate_from_calibration_tables(self):
        """Straight from the calibration (scale-independent arithmetic):
        tagging FATAL/FAILURE as alerts gives the paper's 59.34% FP rate."""
        from repro.simulation.calibration import SCENARIOS

        scenario = SCENARIOS["bgl"]
        alert_total = scenario.raw_alert_total          # all FATAL/FAILURE
        flagged_background = sum(
            spec.count for spec in scenario.background
            if spec.severity in ("FATAL", "FAILURE")
        )
        fp_rate = flagged_background / (flagged_background + alert_total)
        assert fp_rate == pytest.approx(0.5934, abs=0.0005)

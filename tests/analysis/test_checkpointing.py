"""Unit tests for checkpoint-interval analysis."""

import math

import numpy as np
import pytest

from repro.analysis.checkpointing import (
    daly_interval,
    empirical_optimum,
    interval_sweep,
    simulate_lost_work,
    synthetic_exponential_failures,
    young_interval,
)

HOUR = 3600.0


class TestClassicalIntervals:
    def test_young_formula(self):
        assert young_interval(mtbf=8 * HOUR, checkpoint_cost=60.0) == (
            pytest.approx(math.sqrt(2 * 60 * 8 * HOUR))
        )

    def test_daly_close_to_young_for_cheap_checkpoints(self):
        young = young_interval(24 * HOUR, 30.0)
        daly = daly_interval(24 * HOUR, 30.0)
        assert daly == pytest.approx(young, rel=0.05)

    def test_daly_fallback_for_expensive_checkpoints(self):
        assert daly_interval(mtbf=100.0, checkpoint_cost=500.0) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            young_interval(0, 10)
        with pytest.raises(ValueError):
            daly_interval(10, 0)


class TestSimulation:
    def test_failure_free_run(self):
        outcome = simulate_lost_work(
            [], interval=HOUR, checkpoint_cost=60.0, work_target=4 * HOUR,
        )
        assert outcome.failures_hit == 0
        assert outcome.rework == 0.0
        # Three interior checkpoints (the final segment needs none).
        assert outcome.checkpoint_overhead == pytest.approx(180.0)
        assert outcome.wall_time == pytest.approx(4 * HOUR + 180.0)

    def test_single_failure_causes_rework(self):
        outcome = simulate_lost_work(
            [30 * 60.0], interval=HOUR, checkpoint_cost=0.0,
            work_target=2 * HOUR,
        )
        assert outcome.failures_hit == 1
        assert outcome.rework == pytest.approx(30 * 60.0)
        assert outcome.wall_time == pytest.approx(2 * HOUR + 30 * 60.0)

    def test_restart_cost_charged(self):
        with_restart = simulate_lost_work(
            [600.0], interval=HOUR, checkpoint_cost=0.0,
            work_target=HOUR, restart_cost=120.0,
        )
        without = simulate_lost_work(
            [600.0], interval=HOUR, checkpoint_cost=0.0, work_target=HOUR,
        )
        assert with_restart.wall_time == pytest.approx(
            without.wall_time + 120.0
        )

    def test_checkpointing_bounds_rework(self):
        """With checkpoints every 10 minutes, one failure can cost at most
        ~10 minutes + checkpoint time of rework."""
        failures = [55 * 60.0]
        outcome = simulate_lost_work(
            failures, interval=600.0, checkpoint_cost=10.0,
            work_target=2 * HOUR,
        )
        assert outcome.rework < 700.0

    def test_efficiency_between_zero_and_one(self):
        rng = np.random.default_rng(0)
        failures = synthetic_exponential_failures(rng, 2 * HOUR, 48 * HOUR)
        outcome = simulate_lost_work(
            failures, interval=HOUR, checkpoint_cost=60.0,
            work_target=24 * HOUR,
        )
        assert 0.0 < outcome.efficiency < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_lost_work([], interval=0, checkpoint_cost=1,
                               work_target=10)


class TestSweep:
    def test_daly_is_near_empirical_optimum_for_poisson_failures(self):
        """When the exponential assumption HOLDS, Daly's formula lands
        near the swept optimum — the sanity direction."""
        rng = np.random.default_rng(7)
        mtbf = 4 * HOUR
        cost = 120.0
        failures = synthetic_exponential_failures(rng, mtbf, 4000 * HOUR)
        daly = daly_interval(mtbf, cost)
        intervals = [daly / 4, daly / 2, daly, daly * 2, daly * 4, daly * 8]
        outcomes = interval_sweep(
            failures, intervals, cost, work_target=2000 * HOUR,
        )
        best = empirical_optimum(outcomes)
        # Daly's choice is within one sweep step of the empirical best.
        assert best in (daly / 2, daly, daly * 2)

    def test_correlated_failures_shift_the_optimum(self):
        """When failures are bursty (the paper's reality for most
        categories), the within-burst failures cause little extra loss and
        the effective failure rate is the *burst* rate: the naive MTBF
        (which counts every alert) prescribes far too much checkpointing."""
        rng = np.random.default_rng(8)
        failures = []
        t = 0.0
        for _ in range(200):                   # bursts hours apart
            t += float(rng.exponential(20 * HOUR))
            failures.extend(t + k * 120.0 for k in range(10))  # 10 hits, 2 min apart
        cost = 120.0
        naive_mtbf = failures[-1] / len(failures)   # counts every alert
        naive = daly_interval(naive_mtbf, cost)
        burst_mtbf = failures[-1] / 200              # per-failure (filtered)
        informed = daly_interval(burst_mtbf, cost)
        outcomes = interval_sweep(
            failures, [naive, informed], cost, work_target=1000 * HOUR,
        )
        assert outcomes[informed].efficiency > outcomes[naive].efficiency

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            empirical_optimum({})

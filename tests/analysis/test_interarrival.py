"""Unit and property tests for interarrival statistics and log-histograms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.interarrival import (
    interarrival_times,
    interarrivals_by_category,
    log_histogram,
    summary_statistics,
)
from repro.core.filtering import sorted_by_time

from ..conftest import make_alert


class TestInterarrivalTimes:
    def test_basic_gaps(self):
        alerts = [make_alert(0.0), make_alert(2.0), make_alert(7.0)]
        assert interarrival_times(alerts).tolist() == [2.0, 5.0]

    def test_short_streams_have_no_gaps(self):
        assert interarrival_times([]).size == 0
        assert interarrival_times([make_alert(1.0)]).size == 0

    def test_unsorted_input_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            interarrival_times([make_alert(5.0), make_alert(1.0)])

    def test_by_category(self):
        alerts = sorted_by_time(
            [
                make_alert(0.0, category="A"),
                make_alert(1.0, category="B"),
                make_alert(4.0, category="A"),
                make_alert(9.0, category="B"),
            ]
        )
        gaps = interarrivals_by_category(alerts)
        assert gaps["A"].tolist() == [4.0]
        assert gaps["B"].tolist() == [8.0]

    def test_by_category_skips_singletons(self):
        alerts = [make_alert(0.0, category="LONER")]
        assert "LONER" not in interarrivals_by_category(alerts)


class TestLogHistogram:
    def test_counts_total(self):
        hist = log_histogram([1.0, 10.0, 100.0, 1000.0])
        assert hist.total == 4

    def test_zero_gaps_clamped_not_dropped(self):
        hist = log_histogram([0.0, 0.0, 10.0])
        assert hist.total == 3

    def test_empty_sample(self):
        hist = log_histogram([])
        assert hist.total == 0
        assert hist.mode_count() == 0
        assert not hist.is_bimodal()

    def test_bimodal_detection(self):
        # 200 gaps near 1 s, 50 gaps near 10^4 s: two clean modes.
        rng = np.random.default_rng(0)
        gaps = np.concatenate(
            [rng.lognormal(0.0, 0.3, 200), rng.lognormal(9.2, 0.3, 50)]
        )
        hist = log_histogram(gaps)
        assert hist.is_bimodal()
        assert hist.mode_count() >= 2

    def test_unimodal_detection(self):
        rng = np.random.default_rng(1)
        gaps = rng.lognormal(5.0, 0.4, 500)
        hist = log_histogram(gaps)
        assert not hist.is_bimodal()

    def test_fixed_range(self):
        hist = log_histogram([1.0, 10.0], range_log10=(0.0, 4.0),
                             bins_per_decade=1)
        assert len(hist.counts) == 4
        assert hist.bin_edges[0] == 0.0
        assert hist.bin_edges[-1] == 4.0


class TestSummaryStatistics:
    def test_poisson_like_cv_near_one(self):
        rng = np.random.default_rng(2)
        stats = summary_statistics(rng.exponential(10.0, 5000))
        assert stats["cv"] == pytest.approx(1.0, abs=0.1)

    def test_bursty_cv_far_above_one(self):
        gaps = [0.1] * 99 + [10000.0]
        assert summary_statistics(gaps)["cv"] > 5

    def test_empty(self):
        stats = summary_statistics([])
        assert stats["count"] == 0
        assert stats["mean"] == 0.0

    def test_fields(self):
        stats = summary_statistics([1.0, 2.0, 3.0])
        assert stats["count"] == 3
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["median"] == pytest.approx(2.0)
        assert stats["max"] == 3.0


@given(
    st.lists(
        st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=150)
def test_property_histogram_conserves_mass(gaps):
    assert log_histogram(gaps).total == len(gaps)


@given(
    st.lists(
        st.floats(min_value=0, max_value=1e5, allow_nan=False),
        min_size=2,
        max_size=60,
    )
)
@settings(max_examples=150)
def test_property_gaps_nonnegative_and_count_correct(times):
    alerts = [make_alert(t) for t in sorted(times)]
    gaps = interarrival_times(alerts)
    assert gaps.size == len(alerts) - 1
    assert (gaps >= 0).all()

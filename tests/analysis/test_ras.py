"""Unit tests for RAS metrics (naive MTTF vs context-aware lost work)."""

import pytest

from repro.analysis.ras import (
    lost_work_report,
    mttf_sensitivity,
    naive_log_mttf,
)
from repro.core.filtering import sorted_by_time
from repro.simulation.cluster import Cluster
from repro.simulation.opcontext import ContextTimeline, OperationalState
from repro.simulation.workload import Job
from repro.systems.specs import LIBERTY

from ..conftest import make_alert

DAY = 86400.0


class TestNaiveMttf:
    def test_basic(self):
        alerts = [make_alert(float(i)) for i in range(10)]
        assert naive_log_mttf(alerts, 100.0) == 10.0

    def test_no_failures_is_infinite(self):
        assert naive_log_mttf([], 100.0) == float("inf")

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            naive_log_mttf([], 0.0)

    def test_sensitivity_shows_the_papers_instability(self):
        """The same log yields wildly different 'MTTF' as the filtering
        threshold moves — the Section 5 argument against log-derived
        metrics."""
        alerts = []
        for i in range(25):  # failure pairs 300 s apart, each reported
            base = (i + 1) * 1e5  # 20x at 30 s spacing
            for offset in (0.0, 900.0):  # second burst 330 s after the
                # first burst's last report: distinct at T=60, one at T=600
                alerts.extend(
                    make_alert(base + offset + k * 30.0) for k in range(20)
                )
        alerts = sorted_by_time(alerts)
        window = alerts[-1].timestamp
        table = mttf_sensitivity(alerts, window, thresholds=(1.0, 60.0, 600.0))
        assert table[1.0] < table[60.0] < table[600.0]
        assert table[600.0] / table[1.0] > 10


class TestLostWork:
    def _fixture(self):
        cluster = Cluster(LIBERTY, max_nodes=64)
        nodes = cluster.compute_nodes[:4]
        job = Job(job_id=1, start=0.0, duration=10_000.0, nodes=nodes,
                  comm_intensity=0.5)
        alert = make_alert(4000.0, source=nodes[0].name, category="GM_PAR")
        return job, alert, nodes

    def test_elapsed_work_counted(self):
        job, alert, nodes = self._fixture()
        report = lost_work_report([alert], [job])
        assert report.total_lost_node_seconds == pytest.approx(4000.0 * 4)

    def test_category_filtering(self):
        job, alert, _ = self._fixture()
        report = lost_work_report(
            [alert], [job], job_fatal_categories=["PBS_CHK"]
        )
        assert report.entries == []

    def test_context_attribution(self):
        job, alert, _ = self._fixture()
        timeline = ContextTimeline(0.0, DAY)
        timeline.add_transition(
            3000.0, OperationalState.SCHEDULED_DOWNTIME, "maintenance"
        )
        report = lost_work_report([alert], [job], timeline=timeline)
        # The failure happened during downtime: recorded, but not charged
        # to production reliability.
        assert report.total_lost_node_seconds > 0
        assert report.production_lost_node_seconds == 0.0

    def test_by_category(self):
        job, alert, nodes = self._fixture()
        other = make_alert(5000.0, source=nodes[1].name, category="GM_LANAI")
        report = lost_work_report(sorted_by_time([alert, other]), [job])
        by_cat = report.by_category()
        assert set(by_cat) == {"GM_PAR", "GM_LANAI"}

    def test_alert_on_idle_node_loses_nothing(self):
        job, _, _ = self._fixture()
        alert = make_alert(4000.0, source="unrelated-node")
        report = lost_work_report([alert], [job])
        assert report.total_lost_node_seconds == 0.0

"""Unit tests for distribution fitting and goodness-of-fit."""

import numpy as np
import pytest

from repro.analysis.distributions import (
    compare_models,
    empirical_cdf,
    exponentiality_score,
    fit_all,
    fit_exponential,
    fit_lognormal,
    fit_weibull,
)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(31)


class TestFits:
    def test_exponential_sample_accepted(self, rng):
        sample = rng.exponential(50.0, 800)
        fit = fit_exponential(sample)
        assert fit.acceptable
        assert fit.params[0] == pytest.approx(50.0, rel=0.15)

    def test_lognormal_sample_accepted(self, rng):
        sample = rng.lognormal(3.0, 1.0, 800)
        fit = fit_lognormal(sample)
        assert fit.acceptable
        assert fit.params[0] == pytest.approx(3.0, abs=0.15)
        assert fit.params[1] == pytest.approx(1.0, abs=0.15)

    def test_weibull_exponential_degeneracy(self, rng):
        # Weibull with shape 1 IS the exponential; the fit should find it.
        sample = rng.exponential(10.0, 800)
        fit = fit_weibull(sample)
        assert fit.params[0] == pytest.approx(1.0, abs=0.15)

    def test_wrong_model_rejected(self, rng):
        # A lognormal with fat sigma looks nothing like an exponential.
        sample = rng.lognormal(1.0, 2.5, 800)
        assert not fit_exponential(sample).acceptable

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError, match="two positive"):
            fit_exponential([1.0])

    def test_nonpositive_values_dropped(self, rng):
        sample = np.concatenate([[0.0, -1.0], rng.exponential(5.0, 100)])
        fit = fit_exponential(sample)
        assert fit.params[0] > 0

    def test_fit_all_keys(self, rng):
        fits = fit_all(rng.exponential(1.0, 100))
        assert set(fits) == {"exponential", "lognormal", "weibull"}


class TestCompareModels:
    def test_recovers_exponential(self, rng):
        comparison = compare_models(rng.exponential(20.0, 600))
        assert comparison.best_name in ("exponential", "weibull")
        assert not comparison.none_fit

    def test_recovers_lognormal(self, rng):
        comparison = compare_models(rng.lognormal(2.0, 0.8, 600))
        assert comparison.best_name == "lognormal"

    def test_none_fit_on_pathological_mixture(self, rng):
        """The paper's heavy-tail situation: no standard model fits
        (Section 4: 'such modeling of this data is misguided')."""
        sample = np.concatenate(
            [np.full(400, 1.0), rng.lognormal(10.0, 0.2, 200)]
        )
        comparison = compare_models(sample)
        assert comparison.none_fit
        assert comparison.best is None


class TestEmpiricalCdf:
    def test_monotone_and_normalized(self, rng):
        values, heights = empirical_cdf(rng.exponential(1.0, 50))
        assert (np.diff(values) >= 0).all()
        assert heights[-1] == pytest.approx(1.0)
        assert heights[0] == pytest.approx(1 / 50)

    def test_empty(self):
        values, heights = empirical_cdf([])
        assert values.size == 0


class TestExponentialityScore:
    def test_poisson_scores_higher_than_bursty(self, rng):
        poisson_gaps = rng.exponential(10.0, 400)
        bursty_gaps = np.concatenate(
            [np.full(350, 0.5), rng.uniform(5000, 20000, 50)]
        )
        assert exponentiality_score(poisson_gaps) > 10 * max(
            exponentiality_score(bursty_gaps), 1e-12
        )

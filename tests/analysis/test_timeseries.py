"""Unit tests for traffic time series and per-source distributions."""

import numpy as np
import pytest

from repro.analysis.timeseries import (
    bucket_counts,
    hourly_message_counts,
    messages_by_source,
    rate_bytes_per_second,
)
from repro.logmodel.record import LogRecord


def _record(t, source="n1"):
    return LogRecord(timestamp=t, source=source, facility="f", body="x")


class TestBucketCounts:
    def test_hourly_bucketing(self):
        times = [0.0, 10.0, 3600.0, 3601.0, 7200.0]
        series = bucket_counts(times, bucket_seconds=3600.0)
        assert series.counts.tolist() == [2, 2, 1]

    def test_mass_conserved(self):
        rng = np.random.default_rng(0)
        times = rng.uniform(0, 1e6, 5000)
        series = bucket_counts(times)
        assert series.counts.sum() == 5000

    def test_explicit_window(self):
        series = bucket_counts([50.0], bucket_seconds=10.0, start=0.0, end=100.0)
        assert len(series.counts) == 10
        assert series.counts[5] == 1

    def test_empty(self):
        series = bucket_counts([])
        assert series.counts.size == 0
        assert series.mean_rate() == 0.0

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            bucket_counts([1.0], bucket_seconds=0)

    def test_mean_rate(self):
        series = bucket_counts(
            [0.0, 1.0, 2.0], bucket_seconds=10.0, start=0.0, end=10.0
        )
        assert series.mean_rate() == pytest.approx(0.3)

    def test_times_axis(self):
        series = bucket_counts([0.0, 25.0], bucket_seconds=10.0)
        assert series.times().tolist() == [0.0, 10.0, 20.0]

    def test_hourly_wrapper(self):
        records = [_record(0.0), _record(3700.0)]
        series = hourly_message_counts(records)
        assert series.bucket_seconds == 3600.0
        assert series.counts.tolist() == [1, 1]


class TestSourceDistribution:
    def _dist(self):
        records = (
            [_record(0.0, "admin")] * 5
            + [_record(0.0, "n2")] * 3
            + [_record(0.0, "n3")]
            + [_record(0.0, "\x00\x01\x02")]
            + [_record(0.0, "")]
        )
        return messages_by_source(records)

    def test_ranked_order(self):
        ranked = self._dist().ranked()
        assert ranked[0] == ("admin", 5)
        assert ranked[1] == ("n2", 3)

    def test_total_and_top(self):
        dist = self._dist()
        assert dist.total == 11
        assert dist.top(1) == [("admin", 5)]

    def test_concentration(self):
        assert self._dist().concentration(1) == pytest.approx(5 / 11)

    def test_unattributed_counts_garbled_and_empty(self):
        """Figure 2(b)'s corrupted cluster: empty or garbled sources."""
        assert self._dist().unattributed() == 2

    def test_empty_distribution(self):
        dist = messages_by_source([])
        assert dist.total == 0
        assert dist.concentration() == 0.0


class TestRate:
    def test_rate(self):
        assert rate_bytes_per_second(1000, 0.0, 100.0) == 10.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            rate_bytes_per_second(1000, 100.0, 100.0)

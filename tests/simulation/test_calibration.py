"""Consistency tests tying the calibration tables to the paper's numbers.

These are the reproduction's anchor: the scenario totals must equal the
paper's Table 2/3/4 figures exactly, or every downstream "shape" claim is
built on sand.
"""

import pytest

from repro.core.categories import AlertType
from repro.core.rules import get_ruleset
from repro.simulation.calibration import (
    PROFILES,
    SCENARIOS,
    CategoryCalibration,
    SystemScenario,
    get_scenario,
)
from repro.systems.specs import LOG_SPECS, PAPER_TOTAL_ALERTS


@pytest.mark.parametrize("system", sorted(SCENARIOS))
def test_raw_alert_totals_match_table2(system):
    # Spirit's Table 4 column sums to one less than its Table 2 total (an
    # inconsistency in the paper itself); we follow Table 4.
    expected = LOG_SPECS[system].alerts
    tolerance = 1 if system == "spirit" else 0
    assert abs(SCENARIOS[system].raw_alert_total - expected) <= tolerance


@pytest.mark.parametrize("system", sorted(SCENARIOS))
def test_message_totals_match_table2(system):
    expected = LOG_SPECS[system].messages
    tolerance = 1 if system == "spirit" else 0
    assert abs(SCENARIOS[system].message_total - expected) <= tolerance


def test_grand_alert_total_matches_abstract():
    total = sum(s.raw_alert_total for s in SCENARIOS.values())
    assert abs(total - PAPER_TOTAL_ALERTS) <= 1


@pytest.mark.parametrize("system", sorted(SCENARIOS))
def test_category_calibrations_cover_the_ruleset(system):
    scenario = SCENARIOS[system]
    rule_names = set(get_ruleset(system).names())
    calibrated = {cat.category for cat in scenario.categories}
    assert calibrated == rule_names


def test_filtered_totals_match_table4():
    expected = {
        "bgl": 1202,
        "thunderbird": 2088,
        "redstorm": 1430,
        "spirit": 4875,
        "liberty": 1050,
    }
    for system, value in expected.items():
        assert SCENARIOS[system].filtered_alert_total == value


def test_table3_type_sums_emerge_from_table4():
    """Hardware/Software/Indeterminate raw totals across all systems must
    reproduce Table 3's raw column exactly."""
    totals = {t: 0 for t in AlertType}
    for system, scenario in SCENARIOS.items():
        ruleset = get_ruleset(system)
        for cat in scenario.categories:
            totals[ruleset.get(cat.category).alert_type] += cat.raw
    assert totals[AlertType.HARDWARE] == 174_586_516
    assert totals[AlertType.SOFTWARE] == 144_899
    assert abs(totals[AlertType.INDETERMINATE] - 3_350_044) <= 1


def test_headline_category_counts_from_table4():
    checks = [
        ("bgl", "KERNDTLB", 152_734, 37),
        ("thunderbird", "VAPI", 3_229_194, 276),
        ("redstorm", "BUS_PAR", 1_550_217, 5),
        ("spirit", "EXT_CCISS", 103_818_910, 29),
        ("liberty", "PBS_CHK", 2_231, 920),
    ]
    for system, name, raw, filtered in checks:
        cat = SCENARIOS[system].get_category(name)
        assert (cat.raw, cat.filtered) == (raw, filtered)


def test_scenario_windows_match_table2():
    for system, scenario in SCENARIOS.items():
        spec = LOG_SPECS[system]
        assert scenario.start_date == spec.start_date
        assert scenario.days == spec.days
        assert scenario.end_epoch - scenario.start_epoch == spec.days * 86400.0


class TestCategoryCalibration:
    def test_raw_below_filtered_rejected(self):
        with pytest.raises(ValueError, match="raw"):
            CategoryCalibration(category="X", raw=1, filtered=2)

    def test_zero_incidents_rejected(self):
        with pytest.raises(ValueError, match="incident"):
            CategoryCalibration(category="X", raw=5, filtered=0)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            CategoryCalibration(category="X", raw=5, filtered=1,
                                profile="weekend")

    def test_scaling_never_drops_below_incidents(self):
        cat = CategoryCalibration(category="X", raw=1000, filtered=10)
        assert cat.scaled_raw(1e-6) == 10
        assert cat.scaled_raw(0.5) == 500
        assert cat.incidents() == 10
        assert cat.incidents(incident_scale=0.01) == 1

    def test_profiles_are_fractions(self):
        for lo, hi in PROFILES.values():
            assert 0.0 <= lo < hi <= 1.0


class TestScenarioValidation:
    def test_duplicate_categories_rejected(self):
        cat = CategoryCalibration(category="X", raw=5, filtered=1)
        with pytest.raises(ValueError, match="duplicate"):
            SystemScenario(
                system="test", start_date="2005-01-01", days=10,
                categories=(cat, cat), background=(),
            )

    def test_dangling_correlation_rejected(self):
        cat = CategoryCalibration(
            category="X", raw=5, filtered=1, correlate_with="MISSING",
        )
        with pytest.raises(ValueError, match="unknown"):
            SystemScenario(
                system="test", start_date="2005-01-01", days=10,
                categories=(cat,), background=(),
            )

    def test_get_scenario_unknown_raises(self):
        with pytest.raises(KeyError, match="valid"):
            get_scenario("asci-white")


def test_hot_source_encodes_the_papers_case_studies():
    spirit = SCENARIOS["spirit"]
    assert spirit.get_category("EXT_CCISS").hot_source == "sn373"
    tbird = SCENARIOS["thunderbird"]
    assert tbird.get_category("VAPI").hot_raw_fraction == pytest.approx(0.20)


def test_liberty_pbs_bug_is_time_localized():
    liberty = SCENARIOS["liberty"]
    assert liberty.get_category("PBS_CHK").profile == "late_quarter"
    assert liberty.get_category("PBS_BFD").correlate_with == "PBS_CHK"


def test_cpu_clock_bug_is_job_correlated():
    assert SCENARIOS["thunderbird"].get_category("CPU").job_correlated

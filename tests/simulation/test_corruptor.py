"""Unit tests for corruption injection."""

import numpy as np
import pytest

from repro.logmodel.corruption import looks_garbled
from repro.logmodel.record import LogRecord
from repro.simulation.corruptor import Corruptor

BODY = "VIPKL(1): [create_mr] MM_bld_hh_mr failed (-253:VAPI_EAGAIN)"


def _records(n):
    return [
        LogRecord(timestamp=float(i), source="tn231", facility="kernel",
                  body=BODY)
        for i in range(n)
    ]


class TestCorruptOne:
    def test_truncation_produces_prefix(self):
        corruptor = Corruptor(np.random.default_rng(0), modes=(1, 0, 0))
        damaged = corruptor.corrupt_one(_records(1)[0])
        assert damaged.corrupted
        assert BODY.startswith(damaged.body)
        assert len(damaged.body) < len(BODY)

    def test_splice_keeps_prefix_adds_foreign_tail(self):
        corruptor = Corruptor(np.random.default_rng(0), modes=(0, 1, 0))
        damaged = corruptor.corrupt_one(_records(1)[0])
        assert damaged.corrupted
        prefix_len = len(damaged.body) - max(
            len(damaged.body) - len(BODY), 0
        )
        # Some prefix of the original survives, the tail diverges.
        assert damaged.body != BODY
        assert damaged.body[:10] == BODY[:10]

    def test_garbled_source(self):
        corruptor = Corruptor(np.random.default_rng(0), modes=(0, 0, 1))
        damaged = corruptor.corrupt_one(_records(1)[0])
        assert damaged.corrupted
        assert looks_garbled(damaged.source)
        assert damaged.body == BODY


class TestApply:
    def test_rate_zero_touches_nothing(self):
        corruptor = Corruptor(np.random.default_rng(0), rate=0.0)
        out = list(corruptor.apply(_records(100)))
        assert not any(r.corrupted for r in out)

    def test_rate_one_touches_everything(self):
        corruptor = Corruptor(np.random.default_rng(0), rate=1.0)
        out = list(corruptor.apply(_records(50)))
        assert all(r.corrupted for r in out)

    def test_rate_approximately_respected(self):
        corruptor = Corruptor(np.random.default_rng(0), rate=0.1)
        out = list(corruptor.apply(_records(5000)))
        damaged = sum(r.corrupted for r in out)
        assert 300 < damaged < 700

    def test_stream_length_preserved(self):
        corruptor = Corruptor(np.random.default_rng(0), rate=0.5)
        assert len(list(corruptor.apply(_records(200)))) == 200

    def test_stats_accumulate(self):
        corruptor = Corruptor(np.random.default_rng(0), rate=1.0)
        list(corruptor.apply(_records(100)))
        stats = corruptor.stats
        assert stats.processed == 100
        assert stats.truncated + stats.spliced + stats.garbled_source == 100

    def test_determinism(self):
        a = Corruptor(np.random.default_rng(7), rate=0.3)
        b = Corruptor(np.random.default_rng(7), rate=0.3)
        out_a = [(r.body, r.source) for r in a.apply(_records(100))]
        out_b = [(r.body, r.source) for r in b.apply(_records(100))]
        assert out_a == out_b


class TestValidation:
    def test_bad_rate(self):
        with pytest.raises(ValueError):
            Corruptor(np.random.default_rng(0), rate=1.5)

    def test_bad_modes(self):
        with pytest.raises(ValueError):
            Corruptor(np.random.default_rng(0), modes=(1, 2))
        with pytest.raises(ValueError):
            Corruptor(np.random.default_rng(0), modes=(0, 0, 0))

"""Tests for the top-level per-machine log generators."""

import pytest

from repro.core.rules import get_ruleset
from repro.core.tagging import Tagger
from repro.logmodel.record import Channel
from repro.simulation.generator import LogGenerator, generate_log

SCALE = 2e-5
SEED = 404


@pytest.fixture(scope="module")
def liberty_records():
    return list(generate_log("liberty", scale=SCALE, seed=SEED).records)


@pytest.fixture(scope="module")
def bgl_records():
    return list(generate_log("bgl", scale=1e-3, seed=SEED).records)


@pytest.fixture(scope="module")
def redstorm_records():
    return list(generate_log("redstorm", scale=SCALE, seed=SEED).records)


class TestStreamInvariants:
    def test_time_ordered(self, liberty_records):
        times = [r.timestamp for r in liberty_records]
        assert times == sorted(times)

    def test_all_records_stamped_with_system(self, liberty_records):
        assert all(r.system == "liberty" for r in liberty_records)

    def test_timestamps_inside_observation_window(self, liberty_records):
        gen = LogGenerator("liberty", scale=SCALE, seed=SEED)
        t0 = gen.scenario.start_epoch
        t1 = gen.scenario.end_epoch
        # Bursts may trail past their incident start; allow a day of slack.
        assert all(t0 <= r.timestamp <= t1 + 86400 for r in liberty_records)

    def test_syslog_timestamps_have_second_granularity(self, liberty_records):
        assert all(r.timestamp == int(r.timestamp) for r in liberty_records)

    def test_bgl_timestamps_have_microsecond_granularity(self, bgl_records):
        fractional = [r for r in bgl_records if r.timestamp % 1.0 != 0.0]
        assert len(fractional) > len(bgl_records) // 2

    def test_determinism(self):
        a = [
            (r.timestamp, r.source, r.body)
            for r in generate_log("liberty", scale=SCALE, seed=1).records
        ]
        b = [
            (r.timestamp, r.source, r.body)
            for r in generate_log("liberty", scale=SCALE, seed=1).records
        ]
        assert a == b

    def test_different_seeds_differ(self):
        a = [r.timestamp for r in generate_log("liberty", scale=SCALE, seed=1).records]
        b = [r.timestamp for r in generate_log("liberty", scale=SCALE, seed=2).records]
        assert a != b


class TestVolumes:
    def test_message_volume_tracks_scale(self, liberty_records):
        gen = LogGenerator("liberty", scale=SCALE, seed=SEED)
        expected_background = gen.scenario.background_total * SCALE
        # Alerts add the incident floor on top.
        assert len(liberty_records) >= expected_background * 0.9
        assert len(liberty_records) <= expected_background * 1.5 + 2000

    def test_alert_counts_track_calibration(self, liberty_records):
        tagger = Tagger(get_ruleset("liberty"))
        alerts = list(tagger.tag_stream(liberty_records))
        gen = LogGenerator("liberty", scale=SCALE, seed=SEED)
        target = sum(
            cat.scaled_raw(SCALE) for cat in gen.scenario.categories
        )
        # Corruption can untag a few alerts; UDP alert bursts are intact.
        assert target * 0.98 <= len(alerts) <= target

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            LogGenerator("liberty", scale=0)
        with pytest.raises(ValueError):
            LogGenerator("liberty", incident_scale=-1)


class TestBglSpecifics:
    def test_severity_mix_matches_table5_shape(self, bgl_records):
        from collections import Counter

        severities = Counter(r.severity for r in bgl_records if not r.corrupted)
        assert set(severities) <= {
            "FATAL", "FAILURE", "SEVERE", "ERROR", "WARNING", "INFO",
        }
        # INFO dominates messages; FATAL is a large minority (Table 5).
        assert severities["INFO"] > severities["FATAL"] > severities["ERROR"]

    def test_channel_is_jtag(self, bgl_records):
        assert all(
            r.channel is Channel.JTAG_MAILBOX
            for r in bgl_records
            if not r.corrupted
        )


class TestRedStormSpecifics:
    def test_three_channels_present(self, redstorm_records):
        channels = {r.channel for r in redstorm_records if not r.corrupted}
        assert Channel.RAS_TCP in channels
        assert Channel.SYSLOG_UDP in channels
        assert Channel.DDN in channels

    def test_ras_path_has_no_severity(self, redstorm_records):
        for record in redstorm_records:
            if record.channel is Channel.RAS_TCP and not record.corrupted:
                assert record.severity is None

    def test_ras_bodies_carry_src_svc_fields(self, redstorm_records):
        ras = [
            r for r in redstorm_records
            if r.channel is Channel.RAS_TCP and not r.corrupted
        ]
        assert ras
        assert all(r.body.startswith("src:::") for r in ras)

    def test_syslog_path_has_severity(self, redstorm_records):
        for record in redstorm_records:
            if record.channel is Channel.SYSLOG_UDP and not record.corrupted:
                assert record.severity is not None


class TestGroundTruth:
    def test_generated_log_carries_substrate(self):
        gen = generate_log("thunderbird", scale=SCALE, seed=SEED)
        assert gen.jobs, "thunderbird needs a workload for the CPU bug"
        assert gen.incidents
        assert gen.timeline.production_fraction() > 0.5
        assert gen.cluster.spec.name == "thunderbird"

    def test_systems_without_job_categories_skip_workload(self):
        gen = generate_log("liberty", scale=SCALE, seed=SEED)
        assert gen.jobs == []


class TestCorruption:
    def test_corruption_rate_zero_is_clean(self):
        gen = generate_log("liberty", scale=SCALE, seed=SEED, corruption=0.0)
        assert not any(r.corrupted for r in gen.records)

    def test_corruption_present_at_scenario_rate(self, liberty_records):
        corrupted = sum(r.corrupted for r in liberty_records)
        assert corrupted > 0

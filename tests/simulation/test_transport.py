"""Unit tests for the transport models."""

import numpy as np
import pytest

from repro.logmodel.record import LogRecord
from repro.simulation.transport import (
    JtagMailbox,
    TcpRasChannel,
    UdpSyslogChannel,
)


def _records(times):
    return [
        LogRecord(timestamp=t, source="n1", facility="kernel", body="x")
        for t in times
    ]


class TestUdp:
    def test_idle_traffic_mostly_survives(self):
        rng = np.random.default_rng(0)
        channel = UdpSyslogChannel(rng, base_loss=0.001)
        times = np.arange(0, 1000, 10.0)  # 0.1 msg/s: idle
        delivered = list(channel.transmit(_records(times)))
        assert len(delivered) >= len(times) * 0.98

    def test_contention_loses_more(self):
        """'some messages being lost during network contention'
        (Section 3.1): loss under burst load must exceed idle loss."""
        rng = np.random.default_rng(0)
        idle = UdpSyslogChannel(rng, congestion_rate=100.0)
        list(idle.transmit(_records(np.arange(0, 5000, 5.0))))

        rng = np.random.default_rng(0)
        busy = UdpSyslogChannel(rng, congestion_rate=100.0)
        list(busy.transmit(_records(np.arange(0, 5, 0.005))))  # 200 msg/s
        assert busy.loss_fraction > idle.loss_fraction * 3

    def test_loss_counters(self):
        rng = np.random.default_rng(1)
        channel = UdpSyslogChannel(rng, base_loss=1.0, congestion_loss=0.0)
        delivered = list(channel.transmit(_records([1.0, 2.0])))
        assert delivered == []
        assert channel.sent == 2
        assert channel.dropped == 2
        assert channel.loss_fraction == 1.0

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            UdpSyslogChannel(rng, base_loss=1.5)
        with pytest.raises(ValueError):
            UdpSyslogChannel(rng, congestion_rate=0)

    def test_record_contributes_to_own_contention(self):
        """Regression: the in-flight record is counted in the rate window
        *before* the drop probability is computed.  The old off-by-one
        let the first record of every burst see the stale pre-burst rate;
        with congestion_rate=1 a single record alone must already
        saturate the channel."""
        rng = np.random.default_rng(0)
        channel = UdpSyslogChannel(
            rng, base_loss=0.0, congestion_loss=1.0, congestion_rate=1.0
        )
        delivered = list(channel.transmit(_records([0.0])))
        assert delivered == []
        assert channel.dropped == 1

    def test_burst_members_see_rising_rate(self):
        """Within a same-second burst, later records face at least the
        drop probability the first one did — utilization is monotone in
        the window count that now includes each sender."""
        rng = np.random.default_rng(0)
        channel = UdpSyslogChannel(
            rng, base_loss=0.0, congestion_loss=0.5, congestion_rate=10.0
        )
        probs = []
        for record in _records(np.linspace(0, 0.5, 8)):
            channel._window.append(record.timestamp)
            probs.append(channel._loss_probability(record.timestamp))
        assert probs == sorted(probs)
        assert probs[0] == pytest.approx(0.05)  # 1/10 utilization, not 0


class TestTcp:
    def test_lossless(self):
        channel = TcpRasChannel()
        records = _records(np.arange(0, 100, 0.001))  # heavy load
        delivered = list(channel.transmit(records))
        assert len(delivered) == len(records)
        assert channel.delivered == len(records)

    def test_preserves_event_timestamps(self):
        channel = TcpRasChannel(latency=0.5)
        (record,) = channel.transmit(_records([42.0]))
        assert record.timestamp == 42.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            TcpRasChannel(latency=-0.1)


class TestJtag:
    def test_next_poll_after(self):
        mailbox = JtagMailbox(poll_period=0.001)
        assert mailbox.next_poll_after(0.0015) == pytest.approx(0.002)
        assert mailbox.next_poll_after(0.002) == pytest.approx(0.002)

    def test_delivery_delay_bounded_by_poll_period(self):
        mailbox = JtagMailbox(poll_period=0.001)
        rng = np.random.default_rng(2)
        records = _records(rng.uniform(0, 1, size=500))
        list(mailbox.transmit(records))
        assert 0 < mailbox.max_delivery_delay <= 0.001

    def test_invalid_poll_period(self):
        with pytest.raises(ValueError):
            JtagMailbox(poll_period=0)


class TestReceiverPressure:
    def _full_queue(self, capacity=10):
        from repro.resilience.backpressure import BoundedQueue

        queue = BoundedQueue("recv", capacity=capacity)
        for k in range(capacity):
            queue.put(k)
        return queue

    def test_backed_up_receiver_raises_loss(self):
        rng = np.random.default_rng(3)
        channel = UdpSyslogChannel(
            rng, base_loss=0.0, congestion_loss=0.0,
            receiver_queue=self._full_queue(), pressure_loss=1.0,
        )
        delivered = list(channel.transmit(_records([1.0, 2.0, 3.0])))
        assert delivered == []
        assert channel.dropped == channel.dropped_pressure == 3

    def test_empty_receiver_adds_no_loss(self):
        from repro.resilience.backpressure import BoundedQueue

        rng = np.random.default_rng(3)
        channel = UdpSyslogChannel(
            rng, base_loss=0.0, congestion_loss=0.0,
            receiver_queue=BoundedQueue("recv", capacity=10),
            pressure_loss=1.0,
        )
        delivered = list(channel.transmit(_records([1.0, 2.0, 3.0])))
        assert len(delivered) == 3
        assert channel.dropped_pressure == 0

    def test_pressure_drops_counted_separately_from_wire_drops(self):
        rng = np.random.default_rng(5)
        channel = UdpSyslogChannel(
            rng, base_loss=0.5, congestion_loss=0.0,
            receiver_queue=self._full_queue(), pressure_loss=0.5,
        )
        list(channel.transmit(_records(np.arange(0, 200, 1.0))))
        wire_drops = channel.dropped - channel.dropped_pressure
        assert wire_drops > 0
        assert channel.dropped_pressure > 0
        assert channel.dropped <= channel.sent

    def test_invalid_pressure_loss(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            UdpSyslogChannel(rng, pressure_loss=1.5)

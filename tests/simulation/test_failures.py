"""Unit and property tests for incident planning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.calibration import SCENARIOS, PROFILES
from repro.simulation.cluster import Cluster
from repro.simulation.failures import Incident, IncidentPlanner, zipf_split
from repro.simulation.workload import WorkloadModel
from repro.systems.specs import SYSTEMS


class TestZipfSplit:
    def test_exact_sum_and_positivity(self):
        rng = np.random.default_rng(0)
        parts = zipf_split(rng, 1000, 7)
        assert sum(parts) == 1000
        assert all(p >= 1 for p in parts)
        assert len(parts) == 7

    def test_heavy_head(self):
        rng = np.random.default_rng(0)
        parts = zipf_split(rng, 100_000, 20)
        assert max(parts) > 10 * (100_000 // 20) / 10  # far above uniform share...
        assert max(parts) > 2 * (100_000 // 20)

    def test_total_equals_parts(self):
        rng = np.random.default_rng(0)
        assert zipf_split(rng, 5, 5) == [1, 1, 1, 1, 1]

    def test_invalid(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            zipf_split(rng, 3, 5)
        with pytest.raises(ValueError):
            zipf_split(rng, 3, 0)

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=5000),
    )
    @settings(max_examples=100)
    def test_property_split_invariants(self, parts, extra):
        total = parts + extra
        rng = np.random.default_rng(42)
        split = zipf_split(rng, total, parts)
        assert sum(split) == total
        assert len(split) == parts
        assert min(split) >= 1


@pytest.fixture(scope="module")
def liberty_planner():
    scenario = SCENARIOS["liberty"]
    cluster = Cluster(SYSTEMS["liberty"], max_nodes=256)
    rng = np.random.default_rng(17)
    return scenario, IncidentPlanner(scenario, cluster, rng)


class TestPlanner:
    def test_incident_counts_match_filtered_calibration(self, liberty_planner):
        scenario, planner = liberty_planner
        incidents = planner.plan(scale=1e-3)
        by_category = {}
        for inc in incidents:
            by_category[inc.category] = by_category.get(inc.category, 0) + 1
        for cat in scenario.categories:
            assert by_category[cat.category] == cat.filtered

    def test_raw_totals_match_scaled_calibration(self, liberty_planner):
        scenario, planner = liberty_planner
        incidents = planner.plan(scale=0.5)
        totals = {}
        for inc in incidents:
            totals[inc.category] = totals.get(inc.category, 0) + inc.multiplicity
        for cat in scenario.categories:
            assert totals[cat.category] == cat.scaled_raw(0.5)

    def test_incidents_time_sorted_and_in_window(self, liberty_planner):
        scenario, planner = liberty_planner
        incidents = planner.plan(scale=1e-3)
        starts = [inc.start for inc in incidents]
        assert starts == sorted(starts)
        assert all(
            scenario.start_epoch <= s <= scenario.end_epoch for s in starts
        )

    def test_profile_confines_pbs_bug_to_late_quarter(self, liberty_planner):
        scenario, planner = liberty_planner
        incidents = planner.plan(scale=1e-3)
        lo, hi = PROFILES["late_quarter"]
        span = scenario.end_epoch - scenario.start_epoch
        for inc in incidents:
            if inc.category == "PBS_CHK":
                frac = (inc.start - scenario.start_epoch) / span
                assert lo <= frac <= hi

    def test_correlated_category_shadows_base(self, liberty_planner):
        scenario, planner = liberty_planner
        incidents = planner.plan(scale=1e-3)
        par = [i for i in incidents if i.category == "GM_PAR"]
        lanai = [i for i in incidents if i.category == "GM_LANAI"]
        par_starts = np.array([i.start for i in par])
        for inc in lanai:
            lag = inc.start - par_starts
            # every GM_LANAI incident trails some GM_PAR incident closely
            assert (lag[(lag > 0)] < 600).any()

    def test_incident_validation(self):
        with pytest.raises(ValueError):
            Incident(category="X", start=0.0, multiplicity=0, sources=("n",))
        with pytest.raises(ValueError):
            Incident(category="X", start=0.0, multiplicity=1, sources=())


class TestHotSource:
    def test_spirit_sn373_owns_majority_of_disk_alerts(self):
        scenario = SCENARIOS["spirit"]
        cluster = Cluster(SYSTEMS["spirit"], max_nodes=514)
        planner = IncidentPlanner(scenario, cluster, np.random.default_rng(5))
        incidents = planner.plan(scale=1e-3)
        disk = [i for i in incidents if i.category in ("EXT_CCISS", "EXT_FS")]
        total = sum(i.multiplicity for i in disk)
        hot = sum(
            i.multiplicity for i in disk if i.sources == ("sn373",)
        )
        assert hot / total > 0.4  # calibrated at 0.52 per category


class TestJobCorrelation:
    def test_cpu_incidents_land_inside_hot_jobs(self):
        scenario = SCENARIOS["thunderbird"]
        cluster = Cluster(SYSTEMS["thunderbird"], max_nodes=512)
        rng = np.random.default_rng(6)
        jobs = WorkloadModel(cluster).generate_list(
            np.random.default_rng(7), scenario.start_epoch, scenario.end_epoch
        )
        planner = IncidentPlanner(scenario, cluster, rng, jobs=jobs)
        incidents = planner.plan(scale=1e-4)
        cpu = [i for i in incidents if i.category == "CPU"]
        assert cpu
        job_windows = [(j.start, j.end, {n.name for n in j.nodes}) for j in jobs]
        for inc in cpu:
            assert any(
                s <= inc.start < e and set(inc.sources) <= names
                for s, e, names in job_windows
            )
            assert len(inc.sources) >= 2  # spatially spread

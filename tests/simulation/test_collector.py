"""Collector and merge_streams under adversarial streams."""

import numpy as np
import pytest

from repro.logmodel.record import LogRecord
from repro.resilience.deadletter import DeadLetterQueue
from repro.resilience.faults import DuplicateInjector, ReorderInjector
from repro.simulation.collector import Collector, merge_streams
from repro.simulation.corruptor import Corruptor


def _stream(times, source="n1"):
    return [
        LogRecord(timestamp=float(t), source=source, facility="kernel",
                  body=f"msg {t}")
        for t in times
    ]


class TestMerge:
    def test_merges_ordered_streams_in_time_order(self):
        a = _stream([0, 2, 4], source="a")
        b = _stream([1, 3, 5], source="b")
        merged = list(merge_streams(a, b))
        assert [r.timestamp for r in merged] == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_preserves_every_record_including_duplicates(self):
        a = _stream([1, 1, 2], source="a")
        b = _stream([1, 2], source="b")
        merged = list(merge_streams(a, b))
        assert len(merged) == 5
        assert sorted(r.timestamp for r in merged) == [1.0, 1.0, 1.0, 2.0, 2.0]

    def test_disordered_input_yields_disordered_merge(self):
        # heapq.merge assumes sorted inputs; adversarial input leaks
        # through, which is exactly what Collector must then absorb.
        bad = _stream([5, 1, 3], source="bad")
        merged = [r.timestamp for r in merge_streams(bad, _stream([2]))]
        assert merged != sorted(merged)


class TestCollectorAdversarial:
    def test_duplicates_are_stored_not_refused(self):
        """Syslog duplicate delivery is normal: the collector stores
        duplicates (the filter downstream is what suppresses them)."""
        inj = DuplicateInjector(np.random.default_rng(0), rate=1.0)
        collector = Collector("sadmin2", dead_letters=DeadLetterQueue())
        out = list(collector.collect(inj.apply(_stream(range(10)))))
        assert len(out) == 20
        assert collector.stored == 20
        assert collector.quarantined == 0

    def test_out_of_order_within_tolerance_stored(self):
        collector = Collector("ladmin2", dead_letters=DeadLetterQueue(),
                              reorder_tolerance=1.0)
        out = list(collector.collect(_stream([0.0, 2.0, 1.5, 3.0])))
        assert len(out) == 4
        assert collector.disordered == 1
        assert collector.quarantined == 0

    def test_out_of_order_beyond_tolerance_quarantined(self):
        dlq = DeadLetterQueue()
        collector = Collector("ladmin2", dead_letters=dlq,
                              reorder_tolerance=1.0)
        out = list(collector.collect(_stream([0.0, 10.0, 2.0, 11.0])))
        assert [r.timestamp for r in out] == [0.0, 10.0, 11.0]
        assert collector.quarantined == 1
        assert dlq.by_reason == {"out-of-order": 1}

    def test_reordered_stream_from_injector(self):
        inj = ReorderInjector(np.random.default_rng(7), rate=0.2, window=6)
        dlq = DeadLetterQueue()
        collector = Collector("tbird-admin1", dead_letters=dlq,
                              reorder_tolerance=2.0)
        stored = list(collector.collect(inj.apply(_stream(range(500)))))
        assert collector.disordered > 0
        assert collector.stored == len(stored)
        assert collector.stored + collector.quarantined == 500
        # Everything stored respects the tolerance contract.
        high = float("-inf")
        for record in stored:
            assert record.timestamp >= high - 2.0
            high = max(high, record.timestamp)

    def test_invalid_timestamp_quarantined(self):
        dlq = DeadLetterQueue()
        collector = Collector("smw", dead_letters=dlq)
        records = _stream([1.0, 2.0]) + [
            LogRecord(timestamp=float("nan"), source="n9",
                      facility="kernel", body="broken clock"),
        ]
        out = list(collector.collect(records))
        assert len(out) == 2
        assert dlq.by_reason == {"invalid-record": 1}

    def test_without_dlq_historical_behavior_stores_everything(self):
        collector = Collector("smw")
        out = list(collector.collect(_stream([0.0, 50.0, 1.0])))
        assert len(out) == 3
        assert collector.disordered == 1
        assert collector.quarantined == 0

    def test_corruptor_interaction_counts_damage(self):
        corruptor = Corruptor(np.random.default_rng(3), rate=0.2)
        dlq = DeadLetterQueue()
        collector = Collector("tbird-admin1", corruptor=corruptor,
                              dead_letters=dlq)
        out = list(collector.collect(_stream(range(1000))))
        assert collector.corrupted > 0
        assert collector.corrupted == sum(1 for r in out if r.corrupted)
        # Corruption damages bodies/sources, not timestamps: nothing
        # becomes unstorable, so damaged lines land in the merged log
        # (the paper's analysts see them there, not in a quarantine).
        assert collector.quarantined == 0
        assert collector.stored == 1000

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            Collector("x", reorder_tolerance=-1.0)


class TestBoundedFanIn:
    def test_bounded_pending_preserves_stream_when_pausable(self):
        a = _stream(range(0, 200, 2), source="a")
        b = _stream(range(1, 200, 2), source="b")
        collector = Collector("srv", max_pending=16, ingest_chunk=8)
        merged = list(collector.collect(a, b))
        assert len(merged) == 200
        assert collector.stored == 200
        assert collector.pending is not None
        assert collector.pending.peak_occupancy <= 16
        assert collector.shed_accounting.total_spilled == 0

    def test_unpausable_overflow_spills_to_dead_letters(self):
        dlq = DeadLetterQueue()
        collector = Collector(
            "srv", dead_letters=dlq, max_pending=8, ingest_chunk=32,
            pausable_sources=False,
        )
        merged = list(collector.collect(_stream(range(100))))
        spilled = collector.shed_accounting.total_spilled
        assert spilled > 0
        assert len(merged) + spilled == 100  # exact loss accounting
        assert dlq.by_reason.get("shed-overload") == spilled

    def test_invalid_max_pending(self):
        with pytest.raises(ValueError):
            Collector("srv", max_pending=0)

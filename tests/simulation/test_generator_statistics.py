"""Statistical validation of the generated logs against the paper's
distributions — the deeper checks behind the headline tables."""

from collections import Counter

import numpy as np
import pytest

from repro.analysis.phases import detect_phase_shifts, segment_means
from repro.analysis.timeseries import hourly_message_counts, messages_by_source
from repro.logmodel.record import Channel
from repro.simulation.generator import generate_log

SEED = 31337


@pytest.fixture(scope="module")
def bgl_proportional():
    """BG/L scaled proportionally so severity percentages are Table 5's."""
    return list(
        generate_log(
            "bgl", scale=3e-3, incident_scale=3e-3, seed=SEED,
            corruption=0.0,
        ).records
    )


@pytest.fixture(scope="module")
def redstorm_proportional():
    return list(
        generate_log(
            "redstorm", scale=1e-3, incident_scale=1e-3, seed=SEED,
            corruption=0.0,
        ).records
    )


@pytest.fixture(scope="module")
def liberty_stream():
    return list(
        generate_log("liberty", scale=3e-4, seed=SEED, corruption=0.0).records
    )


class TestBglSeverityMix:
    """Table 5's message-severity percentages, within sampling noise."""

    EXPECTED = {
        "FATAL": 0.1802,
        "FAILURE": 0.0003,
        "SEVERE": 0.0041,
        "ERROR": 0.0237,
        "WARNING": 0.0049,
        "INFO": 0.7868,
    }

    def test_proportions(self, bgl_proportional):
        counts = Counter(r.severity for r in bgl_proportional)
        total = sum(counts.values())
        for label, expected in self.EXPECTED.items():
            measured = counts[label] / total
            assert measured == pytest.approx(expected, abs=0.02), label


class TestRedStormChannelMix:
    def test_ras_path_dominates_message_volume(self, redstorm_proportional):
        """Table 2 vs Table 6: only ~25.5 M of Red Storm's 219 M messages
        are syslog; the RAS TCP path carries the rest (~88%)."""
        channels = Counter(r.channel for r in redstorm_proportional)
        total = sum(channels.values())
        assert channels[Channel.RAS_TCP] / total == pytest.approx(0.88, abs=0.03)

    def test_ddn_messages_present_but_minor(self, redstorm_proportional):
        channels = Counter(r.channel for r in redstorm_proportional)
        assert 0 < channels[Channel.DDN] < channels[Channel.SYSLOG_UDP]


class TestLibertyRateProfile:
    """Figure 2(a)'s calibrated step structure in the background rate."""

    def test_detected_upgrade_step_magnitude(self, liberty_stream):
        series = hourly_message_counts(liberty_stream)
        shifts = detect_phase_shifts(series)
        assert shifts
        # The calibrated profile steps 0.45 -> 1.60 (a 3.6x jump) at 28%.
        span = series.end - series.start
        upgrade = min(
            shifts,
            key=lambda s: abs((s.timestamp - series.start) / span - 0.28),
        )
        assert upgrade.magnitude == pytest.approx(1.60 / 0.45, rel=0.3)

    def test_segment_means_follow_profile_ordering(self, liberty_stream):
        series = hourly_message_counts(liberty_stream)
        shifts = detect_phase_shifts(series)
        means = segment_means(series, shifts)
        # The first phase (0.45x) is the quietest of all phases.
        assert means[0] == min(means)


class TestSourceSkew:
    def test_admin_concentration_matches_figure2b(self, liberty_stream):
        """Admin nodes carry a disproportionate share: top-2 sources are
        the admin pair holding >10% of traffic across ~270 nodes."""
        distribution = messages_by_source(liberty_stream)
        ranked = distribution.ranked()
        top_two = {name for name, _ in ranked[:2]}
        assert top_two == {"ladmin1", "ladmin2"}
        assert distribution.concentration(2) > 0.10

    def test_rank_distribution_spans_orders_of_magnitude(self, liberty_stream):
        distribution = messages_by_source(liberty_stream)
        ranked = [count for _, count in distribution.ranked()]
        assert ranked[0] / ranked[-1] > 100


class TestInterarrivalMechanics:
    def test_burst_gaps_stay_under_threshold(self):
        """Within one incident the generator must keep every gap under the
        5 s filter threshold, or raw->filtered coalescing would leak."""
        gen = generate_log("thunderbird", scale=3e-3, seed=SEED,
                           background_scale=0.0, corruption=0.0)
        vapi_times = {}
        for record in gen.records:
            if "Local Catastrophic Error" in record.body:
                vapi_times.setdefault(record.source, []).append(
                    record.timestamp
                )
        # For the hot node (long chains), consecutive same-source gaps
        # inside a burst are < 5 s or mark a new incident (>> 5 s).
        times = sorted(vapi_times.get("tn345", []))
        assert len(times) > 100
        gaps = np.diff(times)
        mid_range = ((gaps >= 5.0) & (gaps < 60.0)).sum()
        assert mid_range / len(gaps) < 0.05

"""Unit tests for the operational-context state machine (Figure 1)."""

import numpy as np
import pytest

from repro.simulation.opcontext import (
    ContextTimeline,
    OperationalState,
    disambiguate,
    synthesize_timeline,
)

DAY = 86400.0


class TestStates:
    def test_production_flag(self):
        assert OperationalState.PRODUCTION_UPTIME.is_production
        assert not OperationalState.SCHEDULED_DOWNTIME.is_production

    def test_downtime_flag(self):
        assert OperationalState.SCHEDULED_DOWNTIME.is_downtime
        assert OperationalState.UNSCHEDULED_DOWNTIME.is_downtime
        assert not OperationalState.ENGINEERING_TIME.is_downtime


class TestTimeline:
    def _timeline(self):
        timeline = ContextTimeline(0.0, 10 * DAY)
        timeline.add_transition(
            2 * DAY, OperationalState.SCHEDULED_DOWNTIME, "OS upgrade"
        )
        timeline.add_transition(
            2 * DAY + 8 * 3600, OperationalState.PRODUCTION_UPTIME,
            "return to production",
        )
        return timeline

    def test_state_at(self):
        timeline = self._timeline()
        assert timeline.state_at(DAY) is OperationalState.PRODUCTION_UPTIME
        assert timeline.state_at(2 * DAY + 60) is OperationalState.SCHEDULED_DOWNTIME
        assert timeline.state_at(3 * DAY) is OperationalState.PRODUCTION_UPTIME

    def test_state_before_first_transition_clamps(self):
        assert self._timeline().state_at(-5.0) is OperationalState.PRODUCTION_UPTIME

    def test_intervals_cover_window(self):
        intervals = list(self._timeline().intervals())
        assert intervals[0][0] == 0.0
        assert intervals[-1][1] == 10 * DAY
        for (_, t1, _, _), (t0, _, _, _) in zip(intervals, intervals[1:]):
            assert t1 == t0

    def test_seconds_in_state(self):
        timeline = self._timeline()
        assert timeline.seconds_in(OperationalState.SCHEDULED_DOWNTIME) == 8 * 3600

    def test_production_fraction(self):
        timeline = self._timeline()
        expected = (10 * DAY - 8 * 3600) / (10 * DAY)
        assert timeline.production_fraction() == pytest.approx(expected)

    def test_transitions_must_be_ordered(self):
        timeline = self._timeline()
        with pytest.raises(ValueError, match="non-decreasing"):
            timeline.add_transition(
                DAY, OperationalState.ENGINEERING_TIME, "too early"
            )

    def test_transition_outside_window_rejected(self):
        timeline = ContextTimeline(0.0, DAY)
        with pytest.raises(ValueError, match="window"):
            timeline.add_transition(
                2 * DAY, OperationalState.ENGINEERING_TIME, "late"
            )

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            ContextTimeline(5.0, 5.0)

    def test_transition_log_message(self):
        timeline = self._timeline()
        message = timeline.transitions[1].as_log_message()
        assert "scheduled-downtime" in message
        assert "OS upgrade" in message


class TestSynthesize:
    def test_covers_window_and_returns_to_production(self):
        rng = np.random.default_rng(8)
        timeline = synthesize_timeline(rng, 0.0, 365 * DAY)
        assert timeline.production_fraction() > 0.8
        assert timeline.seconds_in(OperationalState.SCHEDULED_DOWNTIME) > 0

    def test_deterministic(self):
        a = synthesize_timeline(np.random.default_rng(9), 0.0, 100 * DAY)
        b = synthesize_timeline(np.random.default_rng(9), 0.0, 100 * DAY)
        assert [(t.timestamp, t.state) for t in a.transitions] == [
            (t.timestamp, t.state) for t in b.transitions
        ]

    def test_extra_events_injected(self):
        rng = np.random.default_rng(10)
        timeline = synthesize_timeline(
            rng, 0.0, 30 * DAY,
            extra_events=[(15 * DAY, OperationalState.ENGINEERING_TIME,
                           "acceptance testing")],
        )
        assert timeline.state_at(15 * DAY + 1) in (
            OperationalState.ENGINEERING_TIME,
            # unless a synthesized outage started right after
            OperationalState.SCHEDULED_DOWNTIME,
            OperationalState.UNSCHEDULED_DOWNTIME,
        )
        causes = [t.cause for t in timeline.transitions]
        assert "acceptance testing" in causes


class TestDisambiguate:
    """The BGLMASTER 'ciodb exited normally' example (Section 3.2.1)."""

    def _timeline(self):
        timeline = ContextTimeline(0.0, 10 * DAY)
        timeline.add_transition(
            5 * DAY, OperationalState.SCHEDULED_DOWNTIME, "maintenance"
        )
        return timeline

    def test_ambiguous_alert_in_downtime_is_benign(self):
        assert disambiguate(self._timeline(), 6 * DAY, ambiguous=True) == "benign"

    def test_ambiguous_alert_in_production_is_critical(self):
        assert disambiguate(self._timeline(), DAY, ambiguous=True) == "critical"

    def test_without_context_the_answer_is_unknown(self):
        """The paper's core complaint: 'only with additional information
        supplied by the system administrator could we conclude...'."""
        assert disambiguate(None, DAY, ambiguous=True) == "unknown"

    def test_unambiguous_alerts_need_no_context(self):
        assert disambiguate(None, DAY, ambiguous=False) == "critical"

"""Unit tests for the workload model."""

import numpy as np
import pytest

from repro.simulation.cluster import Cluster
from repro.simulation.workload import (
    WorkloadModel,
    communication_intensive,
    jobs_running_at,
    lost_node_seconds,
)
from repro.systems.specs import LIBERTY


@pytest.fixture(scope="module")
def cluster():
    return Cluster(LIBERTY, max_nodes=128)


@pytest.fixture(scope="module")
def jobs(cluster):
    model = WorkloadModel(cluster, mean_interarrival=600.0)
    return model.generate_list(np.random.default_rng(11), 0.0, 7 * 86400.0)


def test_jobs_ordered_and_in_window(jobs):
    assert jobs, "a week at 10-minute arrivals must produce jobs"
    starts = [j.start for j in jobs]
    assert starts == sorted(starts)
    assert all(0.0 <= j.start < 7 * 86400.0 for j in jobs)


def test_job_ids_unique_and_increasing(jobs):
    ids = [j.job_id for j in jobs]
    assert ids == sorted(set(ids))


def test_widths_are_powers_of_two_within_cap(jobs, cluster):
    cap = len(cluster.compute_nodes) * 0.5
    for job in jobs:
        assert job.width <= cap
        assert job.width >= 1


def test_durations_bounded(jobs):
    for job in jobs:
        assert 60.0 <= job.duration <= 2 * 86400.0


def test_nodes_distinct_within_job(jobs):
    for job in jobs:
        names = [n.name for n in job.nodes]
        assert len(names) == len(set(names))


def test_determinism(cluster):
    model = WorkloadModel(cluster)
    a = model.generate_list(np.random.default_rng(3), 0.0, 86400.0)
    b = model.generate_list(np.random.default_rng(3), 0.0, 86400.0)
    assert [(j.start, j.width) for j in a] == [(j.start, j.width) for j in b]


def test_invalid_parameters_rejected(cluster):
    with pytest.raises(ValueError):
        WorkloadModel(cluster, mean_interarrival=0)
    with pytest.raises(ValueError):
        WorkloadModel(cluster, mean_duration=-5)


def test_communication_intensive_subset(jobs):
    hot = communication_intensive(jobs, threshold=0.7)
    assert all(j.comm_intensity >= 0.7 for j in hot)
    assert len(hot) < len(jobs)
    assert len(hot) > 0


def test_jobs_running_at(jobs):
    job = jobs[0]
    mid = job.start + job.duration / 2
    running = jobs_running_at(jobs, mid)
    assert job in running
    assert all(j.start <= mid < j.end for j in running)


def test_overlaps():
    job = next(iter(jobs_gen()))
    assert job.overlaps(job.start, job.end)
    assert not job.overlaps(job.end, job.end + 10)


def jobs_gen():
    cluster = Cluster(LIBERTY, max_nodes=64)
    model = WorkloadModel(cluster)
    return model.generate(np.random.default_rng(2), 0.0, 86400.0 * 3)


class TestLostWork:
    def test_elapsed_work_lost(self, jobs):
        job = jobs[0]
        failure_time = job.start + 1000.0
        lost = lost_node_seconds([job], failure_time, [job.nodes[0]])
        assert lost == pytest.approx(1000.0 * job.width)

    def test_unaffected_node_loses_nothing(self, jobs, cluster):
        job = jobs[0]
        outside = [
            n for n in cluster.compute_nodes
            if n.name not in {x.name for x in job.nodes}
        ]
        lost = lost_node_seconds([job], job.start + 10, [outside[0]])
        assert lost == 0.0

    def test_failure_outside_run_window_loses_nothing(self, jobs):
        job = jobs[0]
        assert lost_node_seconds([job], job.end + 1, [job.nodes[0]]) == 0.0

    def test_node_seconds(self, jobs):
        job = jobs[0]
        assert job.node_seconds() == pytest.approx(job.duration * job.width)

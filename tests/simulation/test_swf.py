"""Unit tests for SWF workload serialization and flurry sanitation."""

import numpy as np
import pytest

from repro.simulation.cluster import Cluster, Node, NodeRole
from repro.simulation.swf import (
    SWF_FIELDS,
    detect_flurries,
    job_to_swf_line,
    read_swf,
    sanitize_workload,
    write_swf,
)
from repro.simulation.workload import Job, WorkloadModel
from repro.systems.specs import LIBERTY


def _job(job_id=1, start=0.0, duration=3600.0, width=4, user="user001"):
    nodes = tuple(
        Node(name=f"n{k}", role=NodeRole.COMPUTE, index=k)
        for k in range(width)
    )
    return Job(job_id=job_id, start=start, duration=duration, nodes=nodes,
               comm_intensity=0.5, user=user)


class TestSwfFormat:
    def test_line_has_18_fields(self):
        line = job_to_swf_line(_job(), base_time=0.0)
        assert len(line.split()) == SWF_FIELDS

    def test_field_values(self):
        fields = job_to_swf_line(
            _job(job_id=7, start=100.0, duration=500.0, width=8),
            base_time=50.0,
        ).split()
        assert fields[0] == "7"
        assert fields[1] == "50"    # submit relative to base
        assert fields[3] == "500"   # run time
        assert fields[4] == "8"     # processors
        assert fields[11] == "2"    # user001 -> id 2

    def test_write_read_round_trip(self, tmp_path):
        cluster = Cluster(LIBERTY, max_nodes=64)
        model = WorkloadModel(cluster, mean_interarrival=600.0)
        jobs = model.generate_list(np.random.default_rng(1), 0.0, 5 * 86400.0)
        path = tmp_path / "trace.swf"
        written = write_swf(jobs, path, machine_name="liberty")
        recovered = read_swf(path, cluster=cluster)
        assert written == len(jobs) == len(recovered)
        for a, b in zip(sorted(jobs, key=lambda j: j.start), recovered):
            assert a.job_id == b.job_id
            assert b.start == pytest.approx(a.start, abs=1.0)
            assert b.duration == pytest.approx(a.duration, abs=1.0)
            assert a.width == b.width
            assert a.user == b.user

    def test_header_comments_written(self, tmp_path):
        path = tmp_path / "t.swf"
        write_swf([_job()], path, machine_name="spirit")
        text = path.read_text()
        assert text.startswith("; Computer: spirit")
        assert "; UnixStartTime:" in text

    def test_read_without_cluster_fabricates_nodes(self, tmp_path):
        path = tmp_path / "t.swf"
        write_swf([_job(width=3)], path)
        (job,) = read_swf(path)
        assert job.width == 3


class TestFlurries:
    def _trace(self):
        jobs = []
        # Normal traffic: 30 jobs spread over 30 hours, many users.
        for i in range(30):
            jobs.append(_job(job_id=i, start=i * 3600.0,
                             user=f"user{i % 7:03d}"))
        # A flurry: user099 submits 25 jobs in 10 minutes.
        for k in range(25):
            jobs.append(_job(job_id=100 + k, start=50_000.0 + k * 20.0,
                             user="user099"))
        return jobs

    def test_flurry_detected(self):
        flurries = detect_flurries(self._trace(), window=3600.0, min_jobs=20)
        assert len(flurries) == 1
        assert flurries[0].user == "user099"
        assert flurries[0].job_count == 25

    def test_normal_traffic_not_flagged(self):
        jobs = [j for j in self._trace() if j.user != "user099"]
        assert detect_flurries(jobs, window=3600.0, min_jobs=20) == []

    def test_sanitize_removes_only_flurry_jobs(self):
        clean, flurries = sanitize_workload(
            self._trace(), window=3600.0, min_jobs=20
        )
        assert len(flurries) == 1
        assert len(clean) == 30
        assert all(j.user != "user099" or j.start < 50_000.0 for j in clean)

    def test_min_jobs_validation(self):
        with pytest.raises(ValueError):
            detect_flurries([], min_jobs=1)


class TestUserModel:
    def test_generated_jobs_have_skewed_users(self):
        cluster = Cluster(LIBERTY, max_nodes=64)
        model = WorkloadModel(cluster, mean_interarrival=300.0)
        jobs = model.generate_list(np.random.default_rng(3), 0.0, 20 * 86400.0)
        from collections import Counter

        users = Counter(j.user for j in jobs)
        assert len(users) > 3
        top_share = users.most_common(1)[0][1] / len(jobs)
        assert top_share > 0.2  # heavy-hitter users exist

"""Unit tests for the cluster topology model."""

import numpy as np
import pytest

from repro.simulation.cluster import Cluster, NodeRole
from repro.systems.specs import SYSTEMS


@pytest.fixture(scope="module")
def clusters():
    return {name: Cluster(spec, max_nodes=512) for name, spec in SYSTEMS.items()}


def test_node_budget_respected(clusters):
    for cluster in clusters.values():
        # Admin and controller nodes ride on top of the budget.
        assert len(cluster) <= 512 + 16


def test_admin_nodes_present(clusters):
    assert any(n.name == "sadmin2" for n in clusters["spirit"].nodes)
    assert any(n.name == "tbird-admin1" for n in clusters["thunderbird"].nodes)


def test_naming_conventions(clusters):
    spirit_compute = clusters["spirit"].compute_nodes
    assert spirit_compute[0].name.startswith("sn")
    bgl_compute = clusters["bgl"].compute_nodes
    assert bgl_compute[0].name.startswith("R0")
    assert "-M" in bgl_compute[0].name
    redstorm_compute = clusters["redstorm"].compute_nodes
    assert redstorm_compute[0].name.startswith("c0-")


def test_redstorm_has_ddn_controllers(clusters):
    controllers = clusters["redstorm"].by_role(NodeRole.CONTROLLER)
    assert len(controllers) == 8
    assert controllers[0].name == "ddn0"


def test_other_systems_have_no_controllers(clusters):
    assert clusters["spirit"].by_role(NodeRole.CONTROLLER) == []


def test_node_named_lookup(clusters):
    node = clusters["spirit"].node_named("sadmin2")
    assert node.role is NodeRole.ADMIN
    with pytest.raises(KeyError):
        clusters["spirit"].node_named("nonexistent")


def test_node_names_unique(clusters):
    for cluster in clusters.values():
        names = [n.name for n in cluster.nodes]
        assert len(names) == len(set(names))


def test_chattiness_favors_admin_nodes(clusters):
    """Figure 2(b): 'the most prolific sources were administrative
    nodes'."""
    weights = dict(
        (node.name, weight)
        for node, weight in clusters["liberty"].chattiness()
    )
    admin_weight = weights["ladmin1"]
    compute_weights = [
        weight
        for node, weight in clusters["liberty"].chattiness()
        if node.role is NodeRole.COMPUTE
    ]
    assert admin_weight > 10 * max(compute_weights)


def test_chattiness_has_a_zipf_tail(clusters):
    compute = [
        weight
        for node, weight in clusters["liberty"].chattiness()
        if node.role is NodeRole.COMPUTE
    ]
    assert compute[0] > compute[-1]


def test_sample_nodes(clusters):
    rng = np.random.default_rng(1)
    nodes = clusters["spirit"].sample_nodes(rng, 5)
    assert len(nodes) == 5
    assert len({n.name for n in nodes}) == 5


def test_sample_nodes_by_role(clusters):
    rng = np.random.default_rng(1)
    nodes = clusters["redstorm"].sample_nodes(
        rng, 3, roles=(NodeRole.CONTROLLER,)
    )
    assert all(n.role is NodeRole.CONTROLLER for n in nodes)


def test_sample_nodes_caps_at_pool_size(clusters):
    rng = np.random.default_rng(1)
    nodes = clusters["liberty"].sample_nodes(
        rng, 100, roles=(NodeRole.ADMIN,)
    )
    assert len(nodes) == 2


def test_sample_nodes_empty_pool_raises(clusters):
    rng = np.random.default_rng(1)
    with pytest.raises(ValueError):
        clusters["liberty"].sample_nodes(rng, 1, roles=(NodeRole.CONTROLLER,))

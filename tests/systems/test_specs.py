"""Unit tests for the static system/log specifications (Tables 1 and 2)."""

import pytest

from repro.systems.specs import (
    LOG_SPECS,
    PAPER_TOTAL_ALERTS,
    PAPER_TOTAL_CATEGORIES,
    SYSTEMS,
    get_log_spec,
    get_system,
)


def test_five_systems():
    assert set(SYSTEMS) == {
        "bgl", "thunderbird", "redstorm", "spirit", "liberty",
    }


def test_table1_values():
    bgl = SYSTEMS["bgl"]
    assert bgl.top500_rank == 1
    assert bgl.processors == 131072
    assert bgl.memory_gb == 32768
    assert bgl.owner == "LLNL"
    liberty = SYSTEMS["liberty"]
    assert liberty.processors == 512
    assert liberty.interconnect == "Myrinet"
    assert liberty.top500_rank == 445


def test_processor_ordering_spans_two_orders_of_magnitude():
    procs = sorted(spec.processors for spec in SYSTEMS.values())
    assert procs[-1] / procs[0] > 100


def test_table2_values():
    spirit = LOG_SPECS["spirit"]
    assert spirit.days == 558
    assert spirit.messages == 272_298_969
    assert spirit.alerts == 172_816_564
    assert spirit.categories == 8
    liberty = LOG_SPECS["liberty"]
    assert liberty.alerts == 2_452


def test_spirit_logs_largest_despite_second_smallest_machine():
    """Section 3.3.1's paradox, encoded in the reference data."""
    sizes = {name: spec.size_gb for name, spec in LOG_SPECS.items()}
    assert max(sizes, key=sizes.get) == "spirit"
    procs = {name: spec.processors for name, spec in SYSTEMS.items()}
    assert sorted(procs, key=procs.get)[1] == "spirit"


def test_alert_and_category_totals_match_abstract():
    assert sum(spec.alerts for spec in LOG_SPECS.values()) == PAPER_TOTAL_ALERTS
    assert (
        sum(spec.categories for spec in LOG_SPECS.values())
        == PAPER_TOTAL_CATEGORIES
        == 77
    )


def test_lookups():
    assert get_system("bgl").vendor == "IBM"
    assert get_log_spec("redstorm").days == 104
    with pytest.raises(KeyError, match="valid"):
        get_system("earth-simulator")
    with pytest.raises(KeyError, match="valid"):
        get_log_spec("earth-simulator")


def test_log_servers_are_cluster_members():
    """The paper names them: tbird-admin1, sadmin2, ladmin2."""
    assert SYSTEMS["thunderbird"].log_server == "tbird-admin1"
    assert SYSTEMS["spirit"].log_server == "sadmin2"
    assert SYSTEMS["liberty"].log_server == "ladmin2"

"""Unit tests for streaming log I/O and volume statistics."""

import gzip

import pytest

from repro.logio.reader import count_lines, read_log
from repro.logio.stats import StatsCollector, measure_stream
from repro.logio.writer import (
    compressed_ratio,
    log_bytes,
    render_lines,
    renderer_for,
    write_log,
)
from repro.logmodel.bgl import render_bgl_line
from repro.logmodel.record import LogRecord
from repro.logmodel.redstorm import render_redstorm_line
from repro.logmodel.syslog import render_syslog_line
from repro.simulation.generator import generate_log

SCALE = 1e-5
SEED = 77


def _roundtrip(tmp_path, system, compress=False):
    gen = generate_log(system, scale=SCALE, seed=SEED, corruption=0.0)
    original = list(gen.records)
    suffix = ".log.gz" if compress else ".log"
    path = tmp_path / f"{system}{suffix}"
    written = write_log(original, path, system, compress=compress)
    year = int(gen.scenario.start_date.split("-")[0])
    recovered = list(read_log(path, system, year=year))
    return original, recovered, written, path


@pytest.mark.parametrize("system", ["bgl", "thunderbird", "redstorm",
                                    "spirit", "liberty"])
def test_write_read_round_trip(tmp_path, system):
    original, recovered, written, _ = _roundtrip(tmp_path, system)
    assert written == len(original) == len(recovered)
    assert not any(r.corrupted for r in recovered)
    for a, b in zip(original, recovered):
        assert a.timestamp == pytest.approx(b.timestamp, abs=1e-6)
        assert a.source == b.source
        assert a.full_text() == b.full_text()
        assert a.severity == b.severity


def test_gzip_round_trip(tmp_path):
    original, recovered, _, path = _roundtrip(tmp_path, "liberty",
                                              compress=True)
    assert len(recovered) == len(original)
    with gzip.open(path, "rt") as handle:
        assert handle.readline().strip()


def test_count_lines(tmp_path):
    _, _, written, path = _roundtrip(tmp_path, "liberty")
    assert count_lines(path) == written


def test_renderer_for_dispatch():
    assert renderer_for("bgl") is render_bgl_line
    assert renderer_for("redstorm") is render_redstorm_line
    assert renderer_for("spirit") is render_syslog_line


def test_render_lines_lazy():
    records = [
        LogRecord(timestamp=0.0, source="n1", facility="f", body="x"),
    ]
    lines = list(render_lines(records, "liberty"))
    assert lines == ["Jan  1 00:00:00 n1 f: x"]


def test_log_bytes_matches_rendered_length():
    records = [
        LogRecord(timestamp=0.0, source="n1", facility="f", body="x"),
    ]
    line = "Jan  1 00:00:00 n1 f: x"
    assert log_bytes(records, "liberty") == len(line) + 1


def test_compressed_ratio_repetitive_text_compresses_well():
    lines = ["kernel: EXT3-fs error (device sda5)"] * 500
    assert compressed_ratio(lines) < 0.1
    assert compressed_ratio([]) == 1.0


class TestStatsCollector:
    def test_measure_stream(self):
        gen = generate_log("liberty", scale=SCALE, seed=SEED)
        records = list(gen.records)
        stats = measure_stream(iter(records), "liberty")
        assert stats.messages == len(records)
        assert stats.raw_bytes > 0
        assert 0 < stats.compressed_bytes < stats.raw_bytes
        assert stats.days > 200  # Liberty's window is 315 days
        assert stats.rate_bytes_per_second > 0

    def test_compression_matches_real_gzip(self, tmp_path):
        """The incremental zlib estimate must track an actual gzip file."""
        gen = generate_log("liberty", scale=SCALE, seed=SEED)
        records = list(gen.records)
        stats = measure_stream(iter(records), "liberty")
        path = tmp_path / "lib.log.gz"
        write_log(records, path, "liberty", compress=True)
        actual = path.stat().st_size
        assert stats.compressed_bytes == pytest.approx(actual, rel=0.15)

    def test_streaming_observe(self):
        collector = StatsCollector("liberty")
        records = [
            LogRecord(timestamp=float(i), source="n1", facility="f", body="x")
            for i in range(10)
        ]
        seen = list(collector.observe(iter(records)))
        assert len(seen) == 10
        assert collector.stats.messages == 10
        assert collector.stats.first_timestamp == 0.0
        assert collector.stats.last_timestamp == 9.0

    def test_empty_stream(self):
        stats = measure_stream(iter([]), "liberty")
        assert stats.messages == 0
        assert stats.span_seconds == 0.0
        assert stats.rate_bytes_per_second == 0.0
        assert stats.compression_ratio == 1.0


class TestReaderHandleLifetime:
    """Regression: the old generator-based reader leaked its file handle
    when a consumer stopped early — closure waited on the GC."""

    def _write_log(self, tmp_path):
        gen = generate_log("liberty", scale=SCALE, seed=SEED, corruption=0.0)
        path = tmp_path / "liberty.log"
        write_log(gen.records, path, "liberty")
        return path

    def test_handle_closes_on_exhaustion(self, tmp_path):
        path = self._write_log(tmp_path)
        reader = read_log(path, "liberty")
        for _ in reader:
            pass
        assert reader.closed

    def test_early_break_then_close_releases_handle(self, tmp_path):
        path = self._write_log(tmp_path)
        reader = read_log(path, "liberty")
        for k, _ in enumerate(reader):
            if k == 3:
                break
        assert not reader.closed  # break alone does not exhaust
        reader.close()
        assert reader.closed
        with pytest.raises(StopIteration):
            next(reader)

    def test_context_manager_closes_on_early_exit(self, tmp_path):
        path = self._write_log(tmp_path)
        with read_log(path, "liberty") as reader:
            next(reader)
        assert reader.closed

    def test_close_is_idempotent(self, tmp_path):
        path = self._write_log(tmp_path)
        reader = read_log(path, "liberty")
        reader.close()
        reader.close()
        assert reader.closed

    def test_read_ahead_preserves_stream_and_closes(self, tmp_path):
        path = self._write_log(tmp_path)
        plain = [r.full_text() for r in read_log(path, "liberty")]
        reader = read_log(path, "liberty", read_ahead=16)
        ahead = [r.full_text() for r in reader]
        assert ahead == plain
        assert reader.closed

    def test_invalid_read_ahead(self, tmp_path):
        path = self._write_log(tmp_path)
        with pytest.raises(ValueError):
            read_log(path, "liberty", read_ahead=-1)

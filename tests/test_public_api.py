"""Public API surface and reproducibility guarantees.

A downstream adopter depends on two meta-properties beyond any single
feature: the documented names exist and resolve, and every experiment is
bit-for-bit reproducible from its seed.
"""

import importlib

import pytest

import repro


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.core",
        "repro.logmodel",
        "repro.analysis",
        "repro.simulation",
        "repro.prediction",
        "repro.logio",
        "repro.reporting",
        "repro.service",
        "repro.systems",
    ],
)
def test_all_exports_resolve(module_name):
    """Every name in __all__ is actually importable from the module."""
    module = importlib.import_module(module_name)
    assert module.__all__, module_name
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_top_level_subpackages():
    for name in repro.__all__:
        if name != "__version__":
            assert hasattr(repro, name)


def test_readme_quickstart_names_exist():
    """The README's quickstart must not rot."""
    from repro import pipeline

    assert callable(pipeline.run_system)
    assert callable(pipeline.run_stream)
    assert callable(pipeline.run_all)


class TestReproducibility:
    def test_pipeline_bitwise_deterministic(self):
        from repro import api as pipeline

        a = pipeline.run_system("redstorm", scale=1e-5, seed=11)
        b = pipeline.run_system("redstorm", scale=1e-5, seed=11)
        assert a.stats.raw_bytes == b.stats.raw_bytes
        assert a.stats.compressed_bytes == b.stats.compressed_bytes
        assert [
            (x.timestamp, x.source, x.category) for x in a.raw_alerts
        ] == [(x.timestamp, x.source, x.category) for x in b.raw_alerts]

    def test_seed_independence_of_systems(self):
        """Generating one system must not perturb another's stream: the
        per-system seed derivation is independent."""
        from repro.simulation.generator import generate_log

        solo = [r.timestamp for r in generate_log("liberty", scale=1e-5,
                                                  seed=5).records]
        list(generate_log("spirit", scale=1e-5, seed=5).records)
        again = [r.timestamp for r in generate_log("liberty", scale=1e-5,
                                                   seed=5).records]
        assert solo == again

    def test_scale_changes_volume_not_structure(self):
        """Scaling volumes must keep the incident skeleton: filtered
        counts are scale-invariant (the calibration's core promise)."""
        from repro import api as pipeline

        small = pipeline.run_system("liberty", scale=1e-5, seed=6)
        large = pipeline.run_system("liberty", scale=1e-4, seed=6)
        assert small.raw_alert_count <= large.raw_alert_count
        # Filtered counts within a few percent of each other.
        assert abs(
            small.filtered_alert_count - large.filtered_alert_count
        ) <= 0.1 * large.filtered_alert_count


def test_version_string():
    assert repro.__version__ == "1.0.0"

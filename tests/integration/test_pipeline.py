"""End-to-end pipeline tests across the five machines."""

import pytest

from repro import api as pipeline
from repro.core.filtering import log_filter_list, sorted_by_time
from repro.logio.reader import read_log
from repro.logio.writer import write_log
from repro.simulation.calibration import SCENARIOS
from repro.simulation.generator import generate_log

from ..conftest import SEED, SMALL_SCALE


@pytest.mark.parametrize(
    "fixture_name",
    ["bgl_result", "thunderbird_result", "redstorm_result",
     "spirit_result", "liberty_result"],
)
def test_pipeline_invariants(fixture_name, request):
    result = request.getfixturevalue(fixture_name)
    assert result.message_count > 0
    assert 0 < result.filtered_alert_count <= result.raw_alert_count
    assert result.raw_alert_count < result.message_count
    assert result.stats.raw_bytes > result.message_count * 20
    assert result.observed_categories >= 1


@pytest.mark.parametrize(
    "fixture_name,tolerance",
    [
        ("bgl_result", 0.10),
        ("thunderbird_result", 0.10),
        ("redstorm_result", 0.10),
        ("spirit_result", 0.10),
        ("liberty_result", 0.15),
    ],
)
def test_filtered_counts_track_paper_table4(fixture_name, tolerance, request):
    """The whole point of the calibration: running the real tagger + the
    real filter over the generated stream recovers the paper's filtered
    counts (within tolerance for incident collisions)."""
    result = request.getfixturevalue(fixture_name)
    expected = SCENARIOS[result.system].filtered_alert_total
    assert result.filtered_alert_count == pytest.approx(
        expected, rel=tolerance
    )


def test_filter_report_matches_filtered_alerts(liberty_result):
    report_total = sum(
        filtered for _, filtered in liberty_result.category_counts().values()
    )
    assert report_total == liberty_result.filtered_alert_count


def test_summary_renders(liberty_result):
    text = liberty_result.summary()
    assert "liberty" in text
    assert "alerts (filtered)" in text


def test_pipeline_deterministic():
    a = pipeline.run_system("liberty", scale=SMALL_SCALE, seed=123)
    b = pipeline.run_system("liberty", scale=SMALL_SCALE, seed=123)
    assert a.message_count == b.message_count
    assert [x.timestamp for x in a.filtered_alerts] == [
        x.timestamp for x in b.filtered_alerts
    ]


def test_disk_round_trip_preserves_pipeline_results(tmp_path):
    """Generate -> write native format -> read back -> pipeline: identical
    alert counts (modulo nothing: corruption survives rendering)."""
    generated = generate_log("liberty", scale=SMALL_SCALE, seed=SEED)
    records = list(generated.records)
    direct = pipeline.run_stream(iter(records), "liberty")

    path = tmp_path / "liberty.log"
    write_log(records, path, "liberty")
    year = int(generated.scenario.start_date.split("-")[0])
    replayed = pipeline.run_stream(
        read_log(path, "liberty", year=year), "liberty"
    )
    assert replayed.message_count == direct.message_count
    assert replayed.raw_alert_count == direct.raw_alert_count
    assert replayed.filtered_alert_count == direct.filtered_alert_count


def test_alerts_are_time_sorted_property(liberty_result):
    """The pipeline feeds the filter in stream order; verify the generated
    stream satisfied the algorithm's sortedness precondition."""
    times = [a.timestamp for a in liberty_result.raw_alerts]
    assert times == sorted(times)


def test_refiltering_already_filtered_is_stable(liberty_result):
    refiltered = log_filter_list(
        sorted_by_time(liberty_result.filtered_alerts)
    )
    assert len(refiltered) == liberty_result.filtered_alert_count

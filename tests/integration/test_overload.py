"""Bounded-memory overload behavior: the acceptance tests for
backpressure, priority-aware shedding, and graceful degradation.

The contract under test (ISSUE: robustness): a 10x burst workload with a
bounded buffer completes with bounded peak queue occupancy, zero
silently-dropped tagged alerts (every shed alert appears in dead-letter
or spill accounting), and overload metrics surfaced in
``PipelineResult.summary()``.
"""

import pytest

from repro import api as pipeline
from repro.resilience.backpressure import BackpressureConfig
from repro.resilience.deadletter import REASON_SHED_OVERLOAD
from repro.resilience.faults import FaultConfig
from repro.resilience.shedding import (
    CLASS_ALERT,
    CLASS_CHATTER,
    CLASS_DUPLICATE,
)
from repro.resilience.supervisor import PipelineSupervisor

from ..conftest import SEED, SMALL_SCALE

SYSTEM = "liberty"


@pytest.fixture(scope="module")
def unbounded():
    return pipeline.run_system(SYSTEM, scale=SMALL_SCALE, seed=SEED)


@pytest.fixture(scope="module")
def bounded_pausable():
    """Bounded buffers over a pausable source: flow control, no loss."""
    return pipeline.run_system(
        SYSTEM, scale=SMALL_SCALE, seed=SEED,
        backpressure=BackpressureConfig(max_buffer=256, filter_buffer=64),
    )


@pytest.fixture(scope="module")
def burst():
    """ACCEPTANCE workload: arrivals outpace service 10x and the source
    cannot be paused, over a small bounded buffer."""
    return pipeline.run_system(
        SYSTEM, scale=SMALL_SCALE, seed=SEED,
        backpressure=BackpressureConfig.burst(
            factor=10.0, service_batch=32, max_buffer=256, filter_buffer=64,
        ),
    )


class TestPausableSource:
    def test_flow_control_is_lossless(self, unbounded, bounded_pausable):
        """Credit-based backpressure slows the source instead of losing
        anything: the bounded run is equivalent to the unbounded one."""
        assert bounded_pausable.message_count == unbounded.message_count
        assert bounded_pausable.raw_alert_count == unbounded.raw_alert_count
        assert bounded_pausable.filtered_alerts == unbounded.filtered_alerts
        assert bounded_pausable.stats.messages == unbounded.stats.messages
        report = bounded_pausable.overload
        assert report.total_shed == 0
        assert report.total_spilled == 0

    def test_occupancy_stays_below_high_watermark(self, bounded_pausable):
        report = bounded_pausable.overload
        for name, peak in report.queue_peaks.items():
            assert peak <= report.queue_capacities[name]


class TestBurstWorkload:
    def test_completes_with_bounded_peak_occupancy(self, burst):
        report = burst.overload
        assert report.queue_peaks  # both stage queues attached
        for name, peak in report.queue_peaks.items():
            assert 0 < report.queue_capacities[name] <= 256
            assert peak <= report.queue_capacities[name], name

    def test_no_tagged_alert_is_silently_dropped(self, burst):
        """Fresh tagged alerts are never shed; every spilled record is in
        the dead-letter queue under the shed-overload reason."""
        report = burst.overload
        assert CLASS_ALERT not in report.shed_by_class
        assert set(report.shed_by_class) <= {CLASS_CHATTER, CLASS_DUPLICATE}
        spilled_in_dlq = burst.dead_letters.by_reason.get(
            REASON_SHED_OVERLOAD, 0
        )
        assert report.total_spilled == spilled_in_dlq > 0

    def test_record_conservation(self, burst, unbounded):
        """Every generated record is admitted, shed (counted by class),
        or spilled (dead-lettered) — loss is exact, never silent."""
        report = burst.overload
        assert (
            burst.message_count + report.total_shed + report.total_spilled
            == unbounded.message_count
        )

    def test_alert_conservation(self, burst, unbounded):
        """Every alert the unbounded run tags is, in the burst run,
        either processed, shed as an in-window duplicate, or spilled."""
        report = burst.overload
        accounted = (
            burst.raw_alert_count
            + report.shed_by_class.get(CLASS_DUPLICATE, 0)
            + report.total_spilled
        )
        assert accounted == unbounded.raw_alert_count

    def test_filtered_alerts_within_tolerance(self, burst, unbounded):
        """Shedding suppresses, never invents: the burst run's filtered
        alerts are a subset-sized, non-empty fraction of the unbounded
        run's, and everything missing is in the loss accounting."""
        assert 0 < len(burst.filtered_alerts) <= len(unbounded.filtered_alerts)

    def test_overload_metrics_in_summary(self, burst):
        text = burst.summary()
        assert "queues (peak)" in text
        assert "shed:" in text
        assert "spilled:" in text
        assert "overload samples:" in text


class TestDegradedMode:
    def test_sustained_overload_triggers_degradation(self, unbounded):
        config = BackpressureConfig.burst(
            factor=10.0, service_batch=32, max_buffer=256, filter_buffer=64,
            degrade=True, sustain=4,
        )
        result = pipeline.run_system(
            SYSTEM, scale=SMALL_SCALE, seed=SEED, backpressure=config,
        )
        report = result.overload
        assert report.sustained_overload
        assert report.degraded
        assert any("degraded" in event for event in report.events)
        assert "degraded (load)" in result.summary()
        # Coarse stats: counts stay exact, compression measurement stops.
        assert result.stats.messages == result.message_count
        assert result.stats.compressed_bytes < unbounded.stats.compressed_bytes

    def test_without_degrade_flag_no_degradation(self, burst):
        assert burst.overload.sustained_overload
        assert not burst.overload.degraded


class TestSupervisedOverload:
    def test_budget_exhaustion_under_burst_degrades_cleanly(self):
        """Combined fault injection AND sustained overload: the restart
        budget runs out while queues sit at the high watermark.  The
        supervisor must hand back a flagged partial carrying the overload
        report — never an exception, never an unbounded queue."""
        config = BackpressureConfig.burst(
            factor=10.0, service_batch=32, max_buffer=128, filter_buffer=32,
        )
        supervisor = PipelineSupervisor(restart_budget=1, checkpoint_every=50)
        result = supervisor.run_system(
            SYSTEM, scale=SMALL_SCALE, seed=SEED,
            faults=FaultConfig(seed=1, crash_rate=0.05),
            backpressure=config,
        )
        assert result.degraded
        assert result.restarts == 1
        # Every attempt crashed, plus the final dead-letter accounting
        # line emitted at budget exhaustion.
        assert len(result.failure_log) == 3
        report = result.overload
        assert report is not None
        for name, peak in report.queue_peaks.items():
            assert peak <= report.queue_capacities[name], name
        # The shared accounting covered all attempts, and the degraded
        # summary still surfaces the overload picture.
        assert "queues (peak)" in result.summary()

    def test_supervised_burst_recovers_with_overload_report(self):
        """A survivable crash under burst load: the restarted attempt
        completes bounded, and the report covers the whole run."""
        config = BackpressureConfig.burst(
            factor=10.0, service_batch=32, max_buffer=256, filter_buffer=64,
        )
        supervisor = PipelineSupervisor(restart_budget=3, checkpoint_every=100)
        result = supervisor.run_system(
            SYSTEM, scale=SMALL_SCALE, seed=SEED,
            faults=FaultConfig.crash_only(at=500, seed=SEED),
            backpressure=config,
        )
        assert not result.degraded
        assert result.restarts == 1
        report = result.overload
        assert report.total_shed > 0  # burst shedding happened
        for name, peak in report.queue_peaks.items():
            assert peak <= report.queue_capacities[name], name

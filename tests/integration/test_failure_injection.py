"""Failure-injection tests: the pipeline must survive hostile input.

Section 3.2.1 is a catalog of what real logs do to analysis code:
corruption, loss, inconsistent structure.  These tests feed the full
pipeline deliberately damaged streams and assert it degrades gracefully —
no exceptions, flagged records, sane counts.
"""

import numpy as np

from repro import api as pipeline
from repro.core.filtering import log_filter_list, sorted_by_time
from repro.logmodel.record import LogRecord
from repro.simulation.generator import generate_log
from repro.simulation.transport import UdpSyslogChannel

from ..conftest import make_alert

SEED = 99


class TestHeavyCorruption:
    def test_pipeline_survives_50_percent_corruption(self):
        gen = generate_log("liberty", scale=2e-5, seed=SEED, corruption=0.5)
        result = pipeline.run_stream(gen.records, "liberty")
        assert result.corrupted_messages > result.message_count * 0.4
        # Tagging still works on the surviving clean lines (and on
        # corrupted lines whose signature survived).
        assert result.raw_alert_count > 0

    def test_pipeline_survives_total_corruption(self):
        gen = generate_log("liberty", scale=1e-5, seed=SEED, corruption=1.0)
        result = pipeline.run_stream(gen.records, "liberty")
        assert result.corrupted_messages == result.message_count
        assert result.message_count > 0


class TestUdpLoss:
    def test_pipeline_after_lossy_channel(self):
        gen = generate_log("liberty", scale=2e-5, seed=SEED, corruption=0.0)
        channel = UdpSyslogChannel(
            np.random.default_rng(SEED), base_loss=0.1,
        )
        result = pipeline.run_stream(
            channel.transmit(gen.records), "liberty"
        )
        assert channel.dropped > 0
        assert result.message_count == channel.sent - channel.dropped
        assert result.raw_alert_count > 0

    def test_loss_reduces_but_does_not_distort_filtering(self):
        """Losing 10% of a redundant burst still leaves one filtered
        alert per incident: the filter's chain logic is loss-tolerant as
        long as surviving gaps stay under T."""
        alerts = [make_alert(k * 0.5) for k in range(100)]  # one chain
        rng = np.random.default_rng(SEED)
        surviving = [a for a in alerts if rng.random() > 0.1]
        assert len(log_filter_list(surviving)) == 1


class TestHostileStreams:
    def test_empty_log(self):
        result = pipeline.run_stream(iter([]), "liberty")
        assert result.message_count == 0
        assert result.filtered_alert_count == 0
        assert "messages:          0" in result.summary()

    def test_single_record_log(self):
        record = LogRecord(
            timestamp=1.0, source="n1", facility="pbs_mom",
            body="task_check, cannot tm_reply to 1.admin task 1",
            system="liberty",
        )
        result = pipeline.run_stream(iter([record]), "liberty")
        assert result.raw_alert_count == 1
        assert result.filtered_alert_count == 1

    def test_binary_garbage_lines(self, tmp_path):
        """A log file full of binary junk parses tolerantly end to end."""
        from repro.logio.reader import read_log

        path = tmp_path / "garbage.log"
        path.write_bytes(bytes(range(1, 256)) + b"\n" + b"\x00\x01garbage\n")
        result = pipeline.run_stream(
            read_log(path, "liberty", year=2005), "liberty"
        )
        assert result.message_count >= 1
        assert result.corrupted_messages == result.message_count

    def test_duplicate_timestamps(self):
        alerts = [make_alert(5.0) for _ in range(50)]
        assert len(log_filter_list(alerts)) == 1

    def test_filter_rejects_nothing_but_detects_disorder_via_sort(self):
        """Out-of-order input is the caller's bug; sorted_by_time is the
        documented remedy and must fully restore correctness."""
        rng = np.random.default_rng(SEED)
        times = rng.uniform(0, 1e4, 200)
        shuffled = [make_alert(float(t)) for t in times]
        kept = log_filter_list(sorted_by_time(shuffled))
        resorted = sorted(times)
        reference = log_filter_list([make_alert(t) for t in resorted])
        assert [a.timestamp for a in kept] == [a.timestamp for a in reference]


class TestCorruptedAlertsStillCountable:
    def test_truncation_can_unmake_an_alert(self):
        """A truncated alert whose signature was cut off is no longer
        taggable — the asymmetric-reporting reality the paper describes."""
        from repro.core.rules import get_ruleset
        from repro.core.tagging import Tagger

        tagger = Tagger(get_ruleset("liberty"))
        record = LogRecord(
            timestamp=1.0, source="ln1", facility="pbs_mom",
            body="task_check, cannot tm_reply to 1.admin task 1",
            system="liberty",
        )
        assert tagger.match(record) is not None
        truncated = record.with_corruption(body=record.body[:9])  # "task_chec"
        assert tagger.match(truncated) is None

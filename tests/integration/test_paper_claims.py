"""Integration tests pinning the paper's headline claims.

Each test names the claim it reproduces; together they are the "shape"
checklist of DESIGN.md section 4.  Run at moderate scale so volume-driven
claims have enough mass.
"""

import pytest

from repro import api as pipeline
from repro.analysis.correlation import spatial_correlation, tag_correlation
from repro.analysis.distributions import exponentiality_score
from repro.analysis.interarrival import interarrival_times, log_histogram
from repro.analysis.severity_eval import score_severity_detector
from repro.core.rules import get_ruleset
from repro.core.serial_filter import compare_filters
from repro.core.filtering import sorted_by_time
from repro.core.tagging import Tagger
from repro.simulation.generator import generate_log

SEED = 1234


@pytest.fixture(scope="module")
def bgl_medium():
    return pipeline.run_system("bgl", scale=1e-2, seed=SEED)


@pytest.fixture(scope="module")
def spirit_medium():
    return pipeline.run_system("spirit", scale=1e-4, seed=SEED)


@pytest.fixture(scope="module")
def thunderbird_medium():
    # Alert bursts at 3e-3 of paper volume; background thinned further
    # (the claims under test are all alert-side).
    return pipeline.run_system(
        "thunderbird", scale=3e-3, seed=SEED, background_scale=1e-4,
    )


@pytest.fixture(scope="module")
def liberty_full_incident():
    # Full alert multiplicities (Liberty's 2452 alerts are cheap), but
    # background traffic scaled down — its 265 M chaff messages are not.
    return pipeline.run_system(
        "liberty", scale=1.0, seed=SEED, background_scale=1e-4,
    )


class TestSeverityClaims:
    def test_bgl_fatal_failure_tagging_has_59_percent_fp_zero_fn(
        self, bgl_medium
    ):
        """Section 3.2: 'a false negative rate of 0% but a false positive
        rate of 59.34%.'"""
        gen = generate_log("bgl", scale=1e-2, seed=SEED, corruption=0.0)
        score = score_severity_detector(gen.records, Tagger(get_ruleset("bgl")))
        assert score.false_negative_rate == 0.0
        # At reduced scale the rare-category incident floors inflate the
        # alert side slightly, pulling the FP rate a few points below the
        # paper's full-scale 59.34% (the exact rate is pinned
        # scale-independently in tests/analysis/test_severity_eval.py).
        assert score.false_positive_rate == pytest.approx(0.5934, abs=0.06)

    def test_redstorm_crit_dominated_by_disk_alerts(self):
        """Table 6: CRIT is ~99% BUS_PAR disk-failure alerts; 'except for
        this failure case ... syslog severity is not a reliable failure
        indicator.'"""
        result = pipeline.run_system("redstorm", scale=1e-3, seed=SEED)
        rows = dict(
            (label, (messages, alerts))
            for label, messages, _, alerts, _ in result.severity_tab.rows(
                ["EMERG", "ALERT", "CRIT", "ERR", "WARNING", "NOTICE",
                 "INFO", "DEBUG"]
            )
        )
        crit_messages, crit_alerts = rows["CRIT"]
        assert crit_alerts / crit_messages > 0.9
        # INFO carries alerts too (ADDR_ERR/CMD_ABORT) while NOTICE has
        # none: severity order does not order alert-ness.
        assert rows["INFO"][1] > 0
        assert rows["NOTICE"][1] == 0


class TestFilteringClaims:
    def test_spirit_disk_storm_collapses(self, spirit_medium):
        """Section 3.3.1: tens of millions of disk alerts reduce to a
        handful of filtered alerts."""
        counts = spirit_medium.category_counts()
        raw, filtered = counts["EXT_CCISS"]
        assert raw > 5000
        assert filtered <= 40  # paper: 29

    def test_spirit_filtered_dominated_by_software(self, spirit_medium):
        """Table 3's flip: hardware dominates raw alerts, software
        dominates filtered alerts."""
        from repro.core.tagging import count_by_type

        raw_types = count_by_type(spirit_medium.raw_alerts)
        filtered_types = count_by_type(spirit_medium.filtered_alerts)
        assert raw_types["H"] > raw_types["S"]
        assert filtered_types["S"] > filtered_types["H"]

    def test_simultaneous_removes_more_than_serial(self, spirit_medium):
        """Section 3.3.2: the simultaneous filter removes duplicates the
        serial pipeline leaves (dozens of FPs vs at most one TP)."""
        alerts = sorted_by_time(spirit_medium.raw_alerts)
        outcome = compare_filters(alerts)
        assert len(outcome["simultaneous"]) <= len(outcome["serial"])
        assert outcome["removed_only_by_serial"] == []

    def test_sn373_concentration(self, spirit_medium):
        """Section 3.3.1: 'node sn373 logged ... more than half of all
        Spirit alerts.'"""
        from collections import Counter

        sources = Counter(a.source for a in spirit_medium.raw_alerts)
        assert sources["sn373"] / len(spirit_medium.raw_alerts) > 0.4

    def test_vapi_hot_node_reduction(self, thunderbird_medium):
        """Section 3.3.1: one node produced 643,925 VAPI alerts 'of which
        filtering removes all but 246'."""
        vapi_raw = [
            a for a in thunderbird_medium.raw_alerts if a.category == "VAPI"
        ]
        vapi_filtered = [
            a for a in thunderbird_medium.filtered_alerts
            if a.category == "VAPI"
        ]
        assert len(vapi_raw) > 20 * len(vapi_filtered)
        hot_raw = sum(1 for a in vapi_raw if a.source == "tn345")
        assert hot_raw / len(vapi_raw) > 0.1


class TestDistributionClaims:
    def test_ecc_interarrivals_look_independent(self, thunderbird_medium):
        """Section 4 / Figure 5: ECC alerts 'behaved as expected'
        (exponential-ish); VAPI does not."""
        by_cat = {}
        for alert in thunderbird_medium.filtered_alerts:
            by_cat.setdefault(alert.category, []).append(alert)
        ecc_gaps = interarrival_times(by_cat["ECC"])
        vapi_gaps = interarrival_times(by_cat["VAPI"])
        assert exponentiality_score(ecc_gaps) > exponentiality_score(vapi_gaps)

    def test_bgl_bimodal_spirit_unimodal(self, bgl_medium, spirit_medium):
        """Figure 6: 'correlated alerts on BG/L (a) and largely independent
        categories on Spirit (b)' — bimodal vs unimodal filtered
        interarrival log-histograms."""
        bgl_gaps = interarrival_times(bgl_medium.filtered_alerts)
        spirit_gaps = interarrival_times(spirit_medium.filtered_alerts)
        bgl_hist = log_histogram(bgl_gaps, bins_per_decade=2)
        spirit_hist = log_histogram(spirit_gaps, bins_per_decade=2)
        assert bgl_hist.is_bimodal()
        assert not spirit_hist.is_bimodal()

    def test_cpu_alerts_spatially_correlated(self):
        """Section 4: the SMP clock bug makes CPU alerts land on many
        nodes of the same job at once, unlike per-node ECC failures.

        Needs per-incident multiplicities near the paper's ratio (~7.5
        CPU alerts per failure), so run alert volume at a scale where the
        bursts are real bursts; background is irrelevant to the claim.
        """
        gen = generate_log(
            "thunderbird", scale=0.02, incident_scale=0.02,
            background_scale=0.0, seed=SEED, corruption=0.0,
        )
        tagger = Tagger(get_ruleset("thunderbird"))
        alerts = sorted_by_time(list(tagger.tag_stream(gen.records)))
        correlations = spatial_correlation(alerts)
        assert correlations["CPU"].mean_distinct_sources > (
            correlations["ECC"].mean_distinct_sources
        )
        assert correlations["CPU"].is_spatially_correlated
        assert not correlations["ECC"].is_spatially_correlated


class TestLibertyClaims:
    def test_pbs_bug_statistics(self, liberty_full_incident):
        """Section 3.3.1: 2231 task_check alerts, 'up to 74 times' per
        job."""
        pbs = [
            a for a in liberty_full_incident.raw_alerts
            if a.category == "PBS_CHK"
        ]
        assert len(pbs) == pytest.approx(2231, rel=0.02)
        # Largest single burst stays within the same order as the paper's
        # 74-repeat cap.
        from repro.core.tupling import tuple_alerts

        sizes = [t.size for t in tuple_alerts(sorted_by_time(pbs), window=60)]
        assert max(sizes) <= 200

    def test_gm_pair_correlated(self, liberty_full_incident):
        """Figure 3: GM_PAR/GM_LANAI correlation is clear."""
        corr = tag_correlation(
            liberty_full_incident.raw_alerts, "GM_PAR", "GM_LANAI",
            window=600.0,
        )
        assert corr.is_correlated

    def test_pbs_chk_and_bfd_cluster_in_one_quarter(
        self, liberty_full_incident
    ):
        """Figure 4: the horizontal clusters of PBS_CHK and PBS_BFD are
        instances of individual failures, confined in time."""
        scenario = liberty_full_incident.generated.scenario
        span = scenario.end_epoch - scenario.start_epoch
        for category in ("PBS_CHK", "PBS_BFD"):
            times = [
                a.timestamp for a in liberty_full_incident.raw_alerts
                if a.category == category
            ]
            fractions = [(t - scenario.start_epoch) / span for t in times]
            assert min(fractions) >= 0.70
            assert max(fractions) <= 1.01


class TestVolumeOrderings:
    def test_spirit_has_most_alerts_liberty_fewest(self, all_results):
        alerts = {
            name: result.raw_alert_count
            for name, result in all_results.items()
        }
        assert max(alerts, key=alerts.get) == "spirit"
        assert min(alerts, key=alerts.get) == "liberty"

    def test_category_counts_observed(self, all_results):
        """Table 2's categories column (small scales may miss the rarest
        categories, so observed <= defined)."""
        expected_max = {
            "bgl": 41, "thunderbird": 10, "redstorm": 12,
            "spirit": 8, "liberty": 6,
        }
        for name, result in all_results.items():
            assert 1 <= result.observed_categories <= expected_max[name]

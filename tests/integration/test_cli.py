"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.logio.reader import count_lines


@pytest.fixture(scope="module")
def generated_log(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "liberty.log"
    code = main([
        "generate", "liberty", "--scale", "2e-5", "--seed", "3",
        "--out", str(path),
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_writes_lines(self, generated_log):
        assert count_lines(generated_log) > 1000

    def test_gzip(self, tmp_path):
        path = tmp_path / "lib.log.gz"
        code = main([
            "generate", "liberty", "--scale", "1e-5", "--seed", "3",
            "--out", str(path), "--gzip",
        ])
        assert code == 0
        assert path.stat().st_size > 0


class TestAnalyze:
    def test_summary_and_categories(self, generated_log, capsys):
        code = main([
            "analyze", str(generated_log), "--system", "liberty",
            "--year", "2004",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "alerts (filtered)" in out
        assert "PBS_CHK" in out

    def test_full_report_flag(self, generated_log, capsys):
        code = main([
            "analyze", str(generated_log), "--system", "liberty",
            "--year", "2004", "--full",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Failure attribution" in out
        assert "Interarrival characterization" in out

    def test_threshold_flag(self, generated_log, capsys):
        code = main([
            "analyze", str(generated_log), "--system", "liberty",
            "--year", "2004", "--threshold", "600",
        ])
        assert code == 0
        assert "T=600" in capsys.readouterr().out


class TestAnonymize:
    def test_round_trip(self, generated_log, tmp_path, capsys):
        out_path = tmp_path / "anon.log"
        code = main([
            "anonymize", str(generated_log), "--system", "liberty",
            "--out", str(out_path), "--key", "s3cret", "--year", "2004",
        ])
        assert code == 0
        assert count_lines(out_path) == count_lines(generated_log)
        original = generated_log.read_text()
        anonymized = out_path.read_text()
        assert "ladmin1" in original
        assert "ladmin1" not in anonymized


class TestMine:
    def test_templates_reported(self, generated_log, capsys):
        code = main([
            "mine", str(generated_log), "--system", "liberty",
            "--year", "2004", "--min-support", "50",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "templates cover" in out
        assert "task_check," in out


class TestStudy:
    def test_all_tables_printed(self, capsys):
        code = main(["study", "--scale", "1e-5", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1." in out
        assert "Table 6." in out

    def test_faulted_study_completes_and_reports(self, capsys):
        code = main([
            "study", "--scale", "1e-5", "--seed", "3", "--faults",
            "--fault-seed", "11", "--checkpoint-every", "1000",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "Table 6." in captured.out
        assert "restarts:" in captured.err
        assert "dead letters:" in captured.err


class TestAnalyzeQuarantine:
    def test_quarantine_flag_accepted_on_clean_log(self, generated_log,
                                                   capsys):
        code = main([
            "analyze", str(generated_log), "--system", "liberty",
            "--year", "2004", "--quarantine",
        ])
        assert code == 0
        assert "alerts (filtered)" in capsys.readouterr().out


def test_unknown_system_rejected():
    with pytest.raises(SystemExit):
        main(["generate", "asci-red", "--out", "/tmp/x.log"])


class TestStudyBounded:
    def test_bounded_study_reports_shedding(self, capsys):
        code = main([
            "study", "--scale", "1e-5", "--seed", "3",
            "--max-buffer", "128", "--shed-policy", "priority",
            "--overload-degrade",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "Table 6." in captured.out
        assert "shed:" in captured.err

    def test_unknown_shed_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["study", "--max-buffer", "128", "--shed-policy", "yolo"])
